#include "score/tm_score.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/backbone.hpp"
#include "geom/kabsch.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<Vec3> helix_trace(int n, unsigned seed = 5) {
  Rng rng(seed);
  return build_ca_trace(std::string(static_cast<std::size_t>(n), 'H'), rng);
}

TEST(TmScore, D0Formula) {
  EXPECT_DOUBLE_EQ(tm_d0(10), 0.5);  // floor for tiny proteins
  EXPECT_NEAR(tm_d0(100), 1.24 * std::cbrt(85.0) - 1.8, 1e-12);
  EXPECT_GT(tm_d0(500), tm_d0(100));
}

TEST(TmScore, SelfScoreIsOne) {
  const auto ca = helix_trace(80);
  const TmResult r = tm_score(ca, ca);
  EXPECT_NEAR(r.tm_score, 1.0, 1e-9);
  EXPECT_NEAR(r.rmsd_aligned, 0.0, 1e-9);
  EXPECT_EQ(r.aligned, ca.size());
}

TEST(TmScore, RigidMotionInvariance) {
  const auto ca = helix_trace(60);
  const Mat3 rot = rotation_about_axis(Vec3{1, 1, 0}.normalized(), 1.2);
  std::vector<Vec3> moved;
  for (const auto& p : ca) moved.push_back(rot * p + Vec3{20, -5, 3});
  EXPECT_NEAR(tm_score(moved, ca).tm_score, 1.0, 1e-6);
}

TEST(TmScore, MonotoneUnderNoise) {
  Rng rng(9);
  const auto ca = helix_trace(100);
  double prev = 1.1;
  for (double sigma : {0.5, 1.5, 3.0, 6.0}) {
    Rng noise(3);
    std::vector<Vec3> noisy = ca;
    for (auto& p : noisy) {
      p += Vec3{noise.normal(0, sigma), noise.normal(0, sigma), noise.normal(0, sigma)};
    }
    const double tm = tm_score(noisy, ca).tm_score;
    EXPECT_LT(tm, prev);
    prev = tm;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(TmScore, PartialMatchBeatsGlobalRmsdFit) {
  // Half the structure matches perfectly, half is displaced far away:
  // the iterative search must lock onto the good half.
  const auto ca = helix_trace(80);
  std::vector<Vec3> model = ca;
  for (std::size_t i = 40; i < model.size(); ++i) model[i] += Vec3{25, 25, 25};
  const TmResult r = tm_score(model, ca);
  // Roughly half the residues at near-zero distance -> TM ~ 0.5.
  EXPECT_GT(r.tm_score, 0.40);
  EXPECT_LT(r.tm_score, 0.65);
  EXPECT_GE(r.aligned, 35u);
  EXPECT_LT(r.rmsd_aligned, 2.0);
}

TEST(TmScore, ThrowsOnLengthMismatch) {
  EXPECT_THROW(tm_score(helix_trace(10), helix_trace(11)), std::invalid_argument);
}

TEST(TmScore, EmptyPairsGiveZero) {
  const TmResult r = tm_score_aligned({}, {}, {}, 10);
  EXPECT_EQ(r.tm_score, 0.0);
}

TEST(TmScore, AlignedNormalization) {
  // Same correspondence, different normalization lengths.
  const auto ca = helix_trace(50);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 50; ++i) pairs.emplace_back(i, i);
  const TmResult by50 = tm_score_aligned(ca, ca, pairs, 50);
  const TmResult by100 = tm_score_aligned(ca, ca, pairs, 100);
  EXPECT_NEAR(by50.tm_score, 1.0, 1e-9);
  EXPECT_NEAR(by100.tm_score, 0.5, 0.05);
}

// Property: TM in (0, 1] for random perturbation levels and sizes.
class TmRange : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TmRange, ScoreInRange) {
  const auto [n, sigma] = GetParam();
  Rng noise(n);
  auto ca = helix_trace(n, 17);
  std::vector<Vec3> noisy = ca;
  for (auto& p : noisy) {
    p += Vec3{noise.normal(0, sigma), noise.normal(0, sigma), noise.normal(0, sigma)};
  }
  const double tm = tm_score(noisy, ca).tm_score;
  EXPECT_GT(tm, 0.0);
  EXPECT_LE(tm, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, TmRange,
                         ::testing::Combine(::testing::Values(20, 60, 150),
                                            ::testing::Values(0.2, 2.0, 8.0)));

}  // namespace
}  // namespace sf
