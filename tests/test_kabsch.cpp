#include "geom/kabsch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, Rng& rng) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  return pts;
}

TEST(Kabsch, IdentityForIdenticalClouds) {
  Rng rng(1);
  const auto pts = random_cloud(20, rng);
  const Superposition sp = kabsch(pts, pts);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-9);
  for (const auto& p : pts) {
    const Vec3 q = sp.apply(p);
    EXPECT_NEAR(distance(p, q), 0.0, 1e-9);
  }
}

// Property: kabsch exactly recovers any rigid transform, across sizes.
class KabschRecovery : public ::testing::TestWithParam<int> {};

TEST_P(KabschRecovery, RecoversRigidTransform) {
  Rng rng(GetParam());
  const auto mobile = random_cloud(static_cast<std::size_t>(GetParam()) + 4, rng);
  const Mat3 rot = rotation_about_axis(Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized(),
                                       rng.uniform(-3.0, 3.0));
  const Vec3 shift{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
  std::vector<Vec3> target;
  for (const auto& p : mobile) target.push_back(rot * p + shift);

  const Superposition sp = kabsch(mobile, target);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-6);
  for (std::size_t i = 0; i < mobile.size(); ++i) {
    EXPECT_NEAR(distance(sp.apply(mobile[i]), target[i]), 0.0, 1e-6);
  }
  EXPECT_NEAR(sp.rotation.det(), 1.0, 1e-9);  // proper rotation, no reflection
}

INSTANTIATE_TEST_SUITE_P(Sizes, KabschRecovery, ::testing::Values(1, 3, 5, 17, 64, 200));

TEST(Kabsch, RmsdMatchesDirectForNoisyClouds) {
  Rng rng(7);
  const auto a = random_cloud(50, rng);
  std::vector<Vec3> b = a;
  for (auto& p : b) p += Vec3{rng.normal(0, 0.5), rng.normal(0, 0.5), rng.normal(0, 0.5)};
  const Superposition sp = kabsch(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += distance2(sp.apply(a[i]), b[i]);
  EXPECT_NEAR(sp.rmsd, std::sqrt(s / a.size()), 1e-9);
  // Optimal superposition can only improve on raw RMSD.
  EXPECT_LE(sp.rmsd, raw_rmsd(a, b) + 1e-12);
}

TEST(Kabsch, WeightedIgnoresZeroWeightOutliers) {
  Rng rng(13);
  auto mobile = random_cloud(20, rng);
  auto target = mobile;
  std::vector<double> w(20, 1.0);
  // Outlier pair with zero weight must not affect the fit.
  mobile.push_back({100, 100, 100});
  target.push_back({-100, -100, -100});
  w.push_back(0.0);
  const Superposition sp = kabsch_weighted(mobile, target, w);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-9);
}

TEST(Kabsch, ThrowsOnBadInput) {
  std::vector<Vec3> a{{0, 0, 0}}, b;
  EXPECT_THROW(kabsch(a, b), std::invalid_argument);
  EXPECT_THROW(kabsch(b, b), std::invalid_argument);
  EXPECT_THROW(raw_rmsd(a, b), std::invalid_argument);
  EXPECT_THROW(kabsch_weighted(a, a, {0.0}), std::invalid_argument);
}

TEST(SymmetricEigen3, DiagonalizesKnownMatrix) {
  Mat3 m;
  m.m[0][0] = 2.0;
  m.m[1][1] = 5.0;
  m.m[2][2] = 3.0;
  double vals[3];
  Mat3 vecs;
  symmetric_eigen3(m, vals, vecs);
  EXPECT_NEAR(vals[0], 5.0, 1e-10);
  EXPECT_NEAR(vals[1], 3.0, 1e-10);
  EXPECT_NEAR(vals[2], 2.0, 1e-10);
}

TEST(SymmetricEigen3, ReconstructsMatrix) {
  Mat3 m;
  m.m[0][0] = 4.0; m.m[0][1] = 1.0; m.m[0][2] = 0.5;
  m.m[1][0] = 1.0; m.m[1][1] = 3.0; m.m[1][2] = -0.7;
  m.m[2][0] = 0.5; m.m[2][1] = -0.7; m.m[2][2] = 2.0;
  double vals[3];
  Mat3 v;
  symmetric_eigen3(m, vals, v);
  // M == V diag(vals) V^T
  Mat3 d;
  d.m[0][0] = vals[0];
  d.m[1][1] = vals[1];
  d.m[2][2] = vals[2];
  const Mat3 rec = v * d * v.transpose();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(rec.m[i][j], m.m[i][j], 1e-9);
  }
}

}  // namespace
}  // namespace sf
