#include <gtest/gtest.h>

#include "bio/proteome.hpp"
#include "seqsearch/library.hpp"
#include "seqsearch/msa.hpp"
#include "seqsearch/search.hpp"

namespace sf {
namespace {

struct World {
  FoldUniverse universe{15, 7};
  SequenceLibrary full;
  World() {
    LibraryGenParams params;
    params.members_per_weight = 20.0;
    full = generate_full_library(universe, params);
  }
};

TEST(Search, FindsFamilyMembers) {
  World w;
  SearchEngine engine(w.full);
  // Query with a canonical sequence of a populous family.
  const Sequence query("q0", w.universe.canonical_sequence(0));
  SearchCost cost;
  const Msa msa = engine.search(query, &cost);
  EXPECT_GT(msa.depth(), 3u);
  EXPECT_GT(cost.candidates_aligned, 0u);
  EXPECT_EQ(cost.index_lookups, 1u);
  // The top hit should be (near-)identical: the canonical itself is in
  // the library.
  EXPECT_GT(msa.hits().front().identity, 0.95);
}

TEST(Search, HitsAreSortedByEvalue) {
  World w;
  SearchEngine engine(w.full);
  const Msa msa = engine.search(Sequence("q", w.universe.canonical_sequence(1)));
  for (std::size_t i = 1; i < msa.hits().size(); ++i) {
    EXPECT_LE(msa.hits()[i - 1].evalue, msa.hits()[i].evalue);
  }
}

TEST(Search, ReducedLibraryKeepsDiversityDropsDepth) {
  World w;
  const SequenceLibrary reduced = reduce_library(w.full, 0.90);
  SearchEngine full_engine(w.full);
  SearchEngine red_engine(reduced);
  const Sequence query("q", w.universe.canonical_sequence(0));
  const Msa m_full = full_engine.search(query);
  const Msa m_red = red_engine.search(query);
  EXPECT_LE(m_red.depth(), m_full.depth());
  // Effective depth (diversity) is nearly retained -- DeepMind's
  // observation that the reduced BFD performs virtually identically.
  EXPECT_GT(m_red.effective_depth(), 0.75 * m_full.effective_depth());
}

TEST(Search, UnrelatedQueryFindsNothing) {
  World w;
  SearchEngine engine(w.full);
  // Poly-proline is propensity-starved in the generator; no homologs.
  const Msa msa = engine.search(Sequence("junk", std::string(80, 'P')));
  EXPECT_EQ(msa.depth(), 0u);
}

TEST(Search, MaxHitsRespected) {
  World w;
  SearchParams params;
  params.max_hits = 4;
  SearchEngine engine(w.full, params);
  const Msa msa = engine.search(Sequence("q", w.universe.canonical_sequence(0)));
  EXPECT_LE(msa.depth(), 4u);
}

TEST(Msa, EffectiveDepthClustersRedundancy) {
  Msa msa("q");
  // Five near-identical rows -> one effective cluster.
  for (int i = 0; i < 5; ++i) {
    MsaHit h;
    h.identity = 0.95;
    h.query_coverage = 1.0;
    msa.add_hit(h);
  }
  const double neff_redundant = msa.effective_depth(0.8);
  EXPECT_LT(neff_redundant, 2.0);

  Msa diverse("q");
  // Five diverse rows -> close to five clusters.
  for (int i = 0; i < 5; ++i) {
    MsaHit h;
    h.identity = 0.30 + 0.05 * i;
    h.query_coverage = 1.0;
    diverse.add_hit(h);
  }
  EXPECT_GT(diverse.effective_depth(0.8), 4.0);
}

TEST(Msa, MeanIdentityWeightsByCoverage) {
  Msa msa("q");
  MsaHit a;
  a.identity = 1.0;
  a.query_coverage = 1.0;
  MsaHit b;
  b.identity = 0.0;
  b.query_coverage = 0.05;
  msa.add_hit(a);
  msa.add_hit(b);
  EXPECT_GT(msa.mean_identity(), 0.9);
}

TEST(Features, FromMsa) {
  Msa msa("target1");
  for (int i = 0; i < 3; ++i) {
    MsaHit h;
    h.identity = 0.4;
    h.query_coverage = 0.9;
    msa.add_hit(h);
  }
  const InputFeatures f = features_from_msa(msa, 150, true);
  EXPECT_EQ(f.target_id, "target1");
  EXPECT_EQ(f.msa_depth, 3);
  EXPECT_GT(f.neff, 0.0);
  EXPECT_TRUE(f.has_templates);
  // Template feature stacks dominate bytes at this depth.
  const InputFeatures f_no = features_from_msa(msa, 150, false);
  EXPECT_GT(f.feature_bytes(), f_no.feature_bytes());
}

}  // namespace
}  // namespace sf
