// Golden-output tests for the sftrace analysis CLI (tools/sftrace).
//
// The trace under test is recorded through the real TraceRecorder from
// a hand-written event stream, so the expected schedule is small enough
// to reason about and the rendered output is fully deterministic: every
// command's output is byte-stable across calls and across a JSON
// round-trip of the trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "sftrace.hpp"

namespace sf {
namespace {

obs::AttemptEvent event(std::uint64_t id, const std::string& name, bool ok, obs::SpanFault fault,
                        double duration_s) {
  obs::AttemptEvent e;
  e.task_id = id;
  e.name = name;
  e.ok = ok;
  e.fault = fault;
  e.duration_s = duration_s;
  return e;
}

// Two primary workers, one high-memory worker; four first-round tasks
// (one OOM failure, one straggler) and one alternate-pool retry.
obs::TraceDoc make_doc() {
  obs::TraceRecorder rec;
  obs::StageTraceInfo info;
  info.stage = "inference";
  info.primary = {2, 1.0};
  info.alt = {1, 1.0};
  info.dispatch_overhead_s = 0.5;
  info.startup_s = 10.0;
  rec.begin_stage(info);
  obs::RoundInfo first;
  rec.begin_round(first);
  rec.record_attempt(event(0, "a", true, obs::SpanFault::kNone, 20.0));
  rec.record_attempt(event(1, "b", false, obs::SpanFault::kOom, 8.0));
  rec.record_attempt(event(2, "c", true, obs::SpanFault::kStraggler, 90.0));
  rec.record_attempt(event(3, "d", true, obs::SpanFault::kNone, 18.0));
  obs::RoundInfo retry;
  retry.attempt = 1;
  retry.alt_pool = true;
  retry.backoff_s = 5.0;
  rec.begin_round(retry);
  rec.record_attempt(event(1, "b", true, obs::SpanFault::kNone, 12.0));
  rec.end_map(obs::MapAccounting{});  // not modeled: no reconcile
  obs::TraceDoc doc;
  doc.stages = rec.stages();
  return doc;
}

std::string summarize(const obs::TraceDoc& doc) {
  std::ostringstream os;
  sftrace::run_summarize(doc, os);
  return os.str();
}

TEST(Sftrace, SummarizeReportsTheStage) {
  const obs::TraceDoc doc = make_doc();
  const std::string out = summarize(doc);
  EXPECT_NE(out.find("trace: 1 stage(s)"), std::string::npos);
  EXPECT_NE(out.find("stage inference"), std::string::npos);
  EXPECT_NE(out.find("pools: primary 2 x1, alt 1 x1"), std::string::npos);
  EXPECT_NE(out.find("(dispatch 0.5s, startup 10s)"), std::string::npos);
  EXPECT_NE(out.find("rounds 2: #0 4 task(s), #1 1 task(s) alt"), std::string::npos);
  EXPECT_NE(out.find("tasks 4, attempts 5 (1 failed, 1 retries, 1 on alt pool)"),
            std::string::npos);
  // Durations {20,8,90,18,12}: median 18, k=4 threshold 72 -> the 90s
  // span is the only straggler, billing 72s of excess.
  EXPECT_NE(out.find("stragglers (> 4x median): 1, excess 1m 12s"), std::string::npos);
  EXPECT_NE(out.find("c attempt 0 on primary"), std::string::npos);
  EXPECT_NE(out.find("fault oom: 1 attempt(s), 8.0s lost"), std::string::npos);
  EXPECT_NE(out.find("fault straggler: 1 attempt(s), 1m 12s lost"), std::string::npos);
  EXPECT_NE(out.find("attempt-duration histogram:"), std::string::npos);
}

TEST(Sftrace, SummarizeIsByteStableAcrossCallsAndRoundTrip) {
  const obs::TraceDoc doc = make_doc();
  const std::string golden = summarize(doc);
  EXPECT_EQ(summarize(doc), golden);

  const std::string json = obs::render_chrome_trace(doc.stages);
  obs::TraceDoc reread;
  std::string error;
  ASSERT_TRUE(obs::parse_chrome_trace(json, reread, &error)) << error;
  EXPECT_EQ(summarize(reread), golden);
}

TEST(Sftrace, TimelineRendersAndFilters) {
  const obs::TraceDoc doc = make_doc();
  std::ostringstream os;
  sftrace::run_timeline(doc, "", 10, 60, os);
  const std::string all = os.str();
  EXPECT_NE(all.find("stage inference: 2 worker(s)"), std::string::npos);
  EXPECT_NE(all.find("w00000"), std::string::npos);
  EXPECT_NE(all.find('#'), std::string::npos);

  std::ostringstream filtered;
  sftrace::run_timeline(doc, "inference", 10, 60, filtered);
  EXPECT_EQ(filtered.str(), all);

  std::ostringstream missing;
  sftrace::run_timeline(doc, "nope", 10, 60, missing);
  EXPECT_EQ(missing.str(), "sftrace: no stage named 'nope' in trace\n");
}

TEST(Sftrace, DiffOfIdenticalTracesIsClean) {
  const obs::TraceDoc doc = make_doc();
  std::ostringstream os;
  EXPECT_FALSE(sftrace::run_diff(doc, doc, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("stage inference: identical (5 spans"), std::string::npos);
  EXPECT_NE(out.find("traces identical"), std::string::npos);
}

TEST(Sftrace, DiffReportsSpanDrift) {
  const obs::TraceDoc a = make_doc();
  obs::TraceDoc b = make_doc();
  b.stages[0].spans[2].end_s += 3.0;
  std::ostringstream os;
  EXPECT_TRUE(sftrace::run_diff(a, b, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("stage inference: span 2 drifted"), std::string::npos);
  EXPECT_NE(out.find("task 2 attempt 0 pri"), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_EQ(out.find("traces identical"), std::string::npos);
}

TEST(Sftrace, DiffReportsPoolShapeDrift) {
  const obs::TraceDoc a = make_doc();
  obs::TraceDoc b = make_doc();
  b.stages[0].info.primary.workers = 3;
  std::ostringstream os;
  EXPECT_TRUE(sftrace::run_diff(a, b, os));
  EXPECT_NE(os.str().find("pool shape 2+1 vs 3+1"), std::string::npos);
}

TEST(Sftrace, DiffReportsStageCountDrift) {
  const obs::TraceDoc a = make_doc();
  obs::TraceDoc b = make_doc();
  b.stages.push_back(b.stages[0]);
  std::ostringstream os;
  EXPECT_TRUE(sftrace::run_diff(a, b, os));
  EXPECT_NE(os.str().find("stage count differs: 1 vs 2"), std::string::npos);
}

}  // namespace
}  // namespace sf
