// Streaming campaign service: the refactor's load-bearing invariants.
//
//  * Batch re-expression: the degenerate stream (every record at t=0,
//    LengthSorted) IS the batch pipeline -- identical CampaignReport,
//    identical journal bytes, identical trace bytes (no sfService
//    section, no wave tags), for any configured task order. Combined
//    with test_campaign_regression's golden values (captured from the
//    pre-streaming implementation), this locks the refactor to PR 5's
//    exact behavior.
//  * Fingerprint hygiene: streaming campaigns get their own journal
//    identity, sensitive to policy, arrivals, and fair-share knobs; the
//    degenerate stream keeps the plain batch fingerprint.
//  * Fair share: deficit round-robin admits every tenant's work with a
//    bounded unspent deficit (quantum x weight + longest record) even
//    when one tenant floods the queue -- the no-unbounded-starvation
//    property.
//  * Kill-at-any-byte: a mid-stream campaign whose journal is truncated
//    at line boundaries and torn mid-line resumes to the identical
//    ServiceReport (requests, waves, campaign) at every cut, faults and
//    memo hits included.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_service.hpp"
#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "sim/arrivals.hpp"

namespace sf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

void expect_stage_eq(const StageReport& a, const StageReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.node_hours, b.node_hours);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.rerouted_tasks, b.rerouted_tasks);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.finish_spread_s, b.finish_spread_s);
  EXPECT_EQ(a.faults.crash_attempts, b.faults.crash_attempts);
  EXPECT_EQ(a.faults.transient_attempts, b.faults.transient_attempts);
  EXPECT_EQ(a.faults.oom_attempts, b.faults.oom_attempts);
  EXPECT_EQ(a.faults.straggler_attempts, b.faults.straggler_attempts);
  EXPECT_EQ(a.faults.stalled_attempts, b.faults.stalled_attempts);
  EXPECT_EQ(a.faults.lost_work_s, b.faults.lost_work_s);
  EXPECT_EQ(a.faults.backoff_delay_s, b.faults.backoff_delay_s);
}

void expect_campaign_eq(const CampaignReport& a, const CampaignReport& b) {
  expect_stage_eq(a.features, b.features);
  expect_stage_eq(a.inference, b.inference);
  expect_stage_eq(a.relaxation, b.relaxation);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    SCOPED_TRACE("target " + std::to_string(i));
    EXPECT_EQ(a.targets[i].id, b.targets[i].id);
    EXPECT_EQ(a.targets[i].measured, b.targets[i].measured);
    EXPECT_EQ(a.targets[i].top_model, b.targets[i].top_model);
    EXPECT_EQ(a.targets[i].plddt, b.targets[i].plddt);
    EXPECT_EQ(a.targets[i].ptms, b.targets[i].ptms);
    EXPECT_EQ(a.targets[i].recycles, b.targets[i].recycles);
    EXPECT_EQ(a.targets[i].oom, b.targets[i].oom);
    EXPECT_EQ(a.targets[i].relaxed, b.targets[i].relaxed);
    EXPECT_EQ(a.targets[i].clashes_after, b.targets[i].clashes_after);
  }
  EXPECT_EQ(a.plddt.count(), b.plddt.count());
  EXPECT_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_EQ(a.ptms.mean(), b.ptms.mean());
  EXPECT_EQ(a.recycles.mean(), b.recycles.mean());
  ASSERT_EQ(a.inference_records.size(), b.inference_records.size());
  for (std::size_t i = 0; i < a.inference_records.size(); ++i) {
    EXPECT_EQ(a.inference_records[i].task_id, b.inference_records[i].task_id);
    EXPECT_EQ(a.inference_records[i].worker, b.inference_records[i].worker);
    EXPECT_EQ(a.inference_records[i].start_s, b.inference_records[i].start_s);
    EXPECT_EQ(a.inference_records[i].end_s, b.inference_records[i].end_s);
  }
}

void expect_requests_eq(const std::vector<RequestOutcome>& a, const std::vector<RequestOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].record, b[i].record);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].admission_s, b[i].admission_s);
    EXPECT_EQ(a[i].completion_s, b[i].completion_s);
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit);
    EXPECT_EQ(a[i].wave, b[i].wave);
  }
}

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 10;
  cfg.relax_sample = 5;
  return cfg;
}

// ------------------------------------------------------------------ //
// Batch re-expression.
// ------------------------------------------------------------------ //

TEST(CampaignServiceEquivalence, DegenerateStreamIsTheBatchPipelineByteForByte) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(40);
  const PipelineConfig cfg = small_config();

  const std::string batch_path = ::testing::TempDir() + "svc_equiv_batch.sfj";
  const std::string svc_path = ::testing::TempDir() + "svc_equiv_stream.sfj";
  write_file(batch_path, "");
  write_file(svc_path, "");

  obs::TraceRecorder batch_rec;
  CampaignJournal batch_journal(batch_path);
  const CampaignReport batch =
      Pipeline(universe, cfg).run(records, &batch_journal, &batch_rec);

  obs::TraceRecorder svc_rec;
  CampaignJournal svc_journal(svc_path);
  const CampaignService service(universe, cfg, ServiceConfig{});
  const ServiceReport rep =
      service.run(records, degenerate_arrivals(records.size()), &svc_journal, &svc_rec);

  expect_campaign_eq(batch, rep.campaign);
  EXPECT_EQ(rep.waves, 1);
  EXPECT_EQ(rep.service_cache_hits, 0u);

  // Journal bytes, not just semantics: batch journals and re-expressed
  // batch journals interoperate.
  const std::string batch_bytes = read_file(batch_path);
  EXPECT_FALSE(batch_bytes.empty());
  EXPECT_EQ(batch_bytes, read_file(svc_path));

  // Trace bytes: no sfService section, no @wave stage tags.
  EXPECT_FALSE(svc_rec.has_service());
  const std::string batch_trace = obs::render_chrome_trace(batch_rec.stages());
  const std::string svc_trace = obs::render_chrome_trace(svc_rec.stages());
  EXPECT_EQ(batch_trace, svc_trace);
  EXPECT_EQ(svc_trace.find("@"), std::string::npos);
  EXPECT_EQ(svc_trace.find("sfService"), std::string::npos);
}

TEST(CampaignServiceEquivalence, InheritModeHoldsForAnyConfiguredTaskOrder) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(24);
  for (const TaskOrder order :
       {TaskOrder::kSubmission, TaskOrder::kAscendingCost, TaskOrder::kRandom}) {
    SCOPED_TRACE("order " + std::to_string(static_cast<int>(order)));
    PipelineConfig cfg = small_config();
    cfg.order = order;
    const CampaignReport batch = Pipeline(universe, cfg).run(records);
    const CampaignService service(universe, cfg, ServiceConfig{});
    const ServiceReport rep = service.run(records, degenerate_arrivals(records.size()));
    expect_campaign_eq(batch, rep.campaign);
  }
}

TEST(CampaignServiceFingerprint, DegenerateKeepsBatchIdentityOthersDiverge) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = small_config();
  const auto degenerate = degenerate_arrivals(records.size());

  const ServiceConfig base;
  EXPECT_EQ(service_fingerprint(cfg, records, degenerate, base),
            campaign_fingerprint(cfg, records));

  ServiceConfig fifo = base;
  fifo.policy = OrderingPolicy::kFifo;
  const std::uint64_t fp_fifo = service_fingerprint(cfg, records, degenerate, fifo);
  EXPECT_NE(fp_fifo, campaign_fingerprint(cfg, records));

  ArrivalProcessParams ap;
  ap.requests = 12;
  ap.mean_interarrival_s = 10.0;
  ap.seed = 3;
  const auto stream = generate_arrivals(ap, records.size());
  const std::uint64_t fp_stream = service_fingerprint(cfg, records, stream, base);
  EXPECT_NE(fp_stream, campaign_fingerprint(cfg, records));
  EXPECT_NE(fp_stream, fp_fifo);

  ServiceConfig tuned = base;
  tuned.policy = OrderingPolicy::kFairShare;
  tuned.fair_quantum = 333.0;
  EXPECT_NE(service_fingerprint(cfg, records, stream, tuned), fp_stream);
  tuned.tenant_weights = {2.0, 1.0};
  EXPECT_NE(service_fingerprint(cfg, records, stream, tuned),
            service_fingerprint(cfg, records, stream, [&] {
              ServiceConfig c = tuned;
              c.tenant_weights.clear();
              return c;
            }()));
}

// ------------------------------------------------------------------ //
// Fair share: bounded deficit under a flooding tenant.
// ------------------------------------------------------------------ //

TEST(CampaignServiceFairShare, DeficitStaysBoundedWhenOneTenantFloods) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(24);
  int max_len = 0;
  for (const auto& r : records) max_len = std::max(max_len, r.length());

  ArrivalProcessParams ap;
  ap.requests = 60;
  ap.mean_interarrival_s = 5.0;  // queue builds far faster than service
  ap.seed = 9;
  ap.tenants = {
      {"flooder", 8.0, 0.3, 4},  // 8x the traffic of each light tenant
      {"light1", 1.0, 0.0, 4},
      {"light2", 1.0, 0.0, 4},
  };
  const auto arrivals = generate_arrivals(ap, records.size());

  ServiceConfig svc;
  svc.policy = OrderingPolicy::kFairShare;
  svc.fair_quantum = 400.0;
  svc.tenant_weights = {1.0, 1.0, 1.0};  // equal shares despite 8/1/1 traffic
  const CampaignService service(universe, small_config(), svc);
  const ServiceReport rep = service.run(records, arrivals);

  // Every request completes; latency is non-negative and finite.
  ASSERT_EQ(rep.requests.size(), arrivals.size());
  for (const auto& o : rep.requests) {
    EXPECT_GE(o.admission_s, o.arrival_s);
    EXPECT_GE(o.completion_s, o.admission_s);
    EXPECT_LE(o.completion_s, rep.makespan_s);
  }

  // The bounded-starvation witness: no tenant's unspent deficit ever
  // exceeds one quantum of credit plus the longest possible record (the
  // classic DRR bound).
  ASSERT_GE(rep.max_deficit.size(), 3u);
  for (std::size_t t = 0; t < rep.max_deficit.size(); ++t) {
    SCOPED_TRACE("tenant " + std::to_string(t));
    EXPECT_LE(rep.max_deficit[t], svc.fair_quantum * 1.0 + static_cast<double>(max_len) + 1e-9);
  }

  // Light tenants are not starved behind the flood: each completes its
  // whole backlog no later than the flooder finishes.
  double flood_last = 0.0, light_last = 0.0;
  for (const auto& o : rep.requests) {
    (o.tenant == 0 ? flood_last : light_last) =
        std::max(o.tenant == 0 ? flood_last : light_last, o.completion_s);
  }
  EXPECT_LE(light_last, flood_last);
}

// ------------------------------------------------------------------ //
// Kill-at-any-byte: mid-stream journal resume.
// ------------------------------------------------------------------ //

TEST(CampaignServiceChaos, StreamingResumeReproducesAtEveryJournalCut) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(10);

  PipelineConfig cfg = small_config();
  cfg.quality_sample = 6;
  cfg.relax_sample = 3;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  cfg.faults.seed = 77;
  cfg.faults.crash_rate = 0.06;
  cfg.faults.transient_rate = 0.08;
  cfg.faults.transient_attempts = 1;
  cfg.faults.oom_rate = 0.05;
  cfg.faults.straggler_rate = 0.1;
  cfg.faults.straggler_factor = 3.0;

  ArrivalProcessParams ap;
  ap.requests = 18;
  ap.mean_interarrival_s = 120.0;
  ap.seed = 5;
  ap.tenants = {{"a", 2.0, 0.4, 3}, {"b", 1.0, 0.2, 3}};
  const auto arrivals = generate_arrivals(ap, records.size());

  ServiceConfig svc;
  svc.policy = OrderingPolicy::kFairShare;
  svc.admit_limit = 4;  // force several waves
  const CampaignService service(universe, cfg, svc);

  const ServiceReport baseline = service.run(records, arrivals);
  ASSERT_GT(baseline.waves, 1);
  ASSERT_GT(baseline.service_cache_hits, 0u);  // hot sets actually repeat

  const std::string full_path = ::testing::TempDir() + "svc_chaos_full.sfj";
  write_file(full_path, "");
  {
    CampaignJournal journal(full_path);
    const ServiceReport journaled = service.run(records, arrivals, &journal);
    expect_campaign_eq(baseline.campaign, journaled.campaign);
    expect_requests_eq(baseline.requests, journaled.requests);
  }
  const std::string full = read_file(full_path);
  ASSERT_NE(full.find("sfjournal v1"), std::string::npos);

  // Clean line-boundary kills plus torn mid-line tails.
  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') cuts.push_back(pos + 1);
  }
  const std::size_t line_cuts = cuts.size();
  std::vector<std::size_t> selected;
  const std::size_t stride = std::max<std::size_t>(1, line_cuts / 16);
  for (std::size_t i = 0; i < line_cuts; i += stride) {
    selected.push_back(cuts[i]);
    if (i + 1 < line_cuts && cuts[i] + 3 < cuts[i + 1]) selected.push_back(cuts[i] + 3);
  }

  int resumed_runs = 0;
  for (const std::size_t cut : selected) {
    const std::string path = ::testing::TempDir() + "svc_chaos_cut_" + std::to_string(cut) + ".sfj";
    write_file(path, full.substr(0, cut));
    CampaignJournal journal(path);
    const ServiceReport resumed = service.run(records, arrivals, &journal);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    expect_campaign_eq(baseline.campaign, resumed.campaign);
    expect_requests_eq(baseline.requests, resumed.requests);
    EXPECT_EQ(baseline.waves, resumed.waves);
    EXPECT_EQ(baseline.makespan_s, resumed.makespan_s);
    ++resumed_runs;
  }
  EXPECT_GE(resumed_runs, 16);

  // A journal from a different policy is a foreign campaign: rejected,
  // then overwritten cleanly by the campaign that owns the path.
  {
    ServiceConfig other = svc;
    other.policy = OrderingPolicy::kFifo;
    CampaignJournal journal(full_path);
    EXPECT_FALSE(journal.open(service_fingerprint(cfg, records, arrivals, other)));
  }
  {
    CampaignJournal journal(full_path);
    const ServiceReport resumed = service.run(records, arrivals, &journal);
    expect_campaign_eq(baseline.campaign, resumed.campaign);
  }
}

}  // namespace
}  // namespace sf
