// src/store: content-addressed artifact store.
//
// Covers the store's determinism contract bottom-up: key derivation,
// bit-exact payload codecs, manifest torn-write recovery + compaction,
// FIFO eviction, checksum-guarded reads, replica-priced staging -- and
// top-down: a campaign with a store produces a byte-identical report to
// one without, and a journal-sealed feature stage plus a warm store
// resumes with zero feature-stage task attempts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "store/artifact_store.hpp"
#include "store/codec.hpp"
#include "store/key.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

store::ArtifactKey key_of(int i) {
  return store::artifact_key(mix64(0x5eedULL, static_cast<std::uint64_t>(i)), "features",
                             0xc0f1ULL);
}

// ------------------------------------------------------------------ //
// Keys.
// ------------------------------------------------------------------ //

TEST(StoreKey, DeterministicAndSensitiveToEveryInput) {
  FoldUniverse universe(30, 9);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 3).generate(4);
  const std::uint64_t fp0 = store::record_fingerprint(records[0]);
  EXPECT_EQ(fp0, store::record_fingerprint(records[0]));
  EXPECT_NE(fp0, store::record_fingerprint(records[1]));

  const store::ArtifactKey base = store::artifact_key(fp0, "features", 7);
  EXPECT_EQ(base, store::artifact_key(fp0, "features", 7));
  EXPECT_NE(base, store::artifact_key(fp0, "inference", 7));
  EXPECT_NE(base, store::artifact_key(fp0, "features", 8));
  EXPECT_NE(base, store::artifact_key(fp0 + 1, "features", 7));
}

TEST(StoreKey, HexRoundTrip) {
  const store::ArtifactKey key = store::artifact_key(0x123456789abcdef0ULL, "relaxation", 42);
  const std::string hex = key.hex();
  EXPECT_EQ(hex.size(), 32u);
  store::ArtifactKey back;
  ASSERT_TRUE(store::ArtifactKey::from_hex(hex, back));
  EXPECT_EQ(back, key);
  EXPECT_FALSE(store::ArtifactKey::from_hex("zz", back));
}

TEST(StoreKey, ContentChecksumSeparatesPayloads) {
  EXPECT_EQ(store::content_checksum("abc"), store::content_checksum("abc"));
  EXPECT_NE(store::content_checksum("abc"), store::content_checksum("abd"));
  EXPECT_NE(store::content_checksum(""), store::content_checksum("a"));
}

// ------------------------------------------------------------------ //
// Codecs: bit-exact round trips.
// ------------------------------------------------------------------ //

TEST(StoreCodec, FeaturesRoundTripBitExact) {
  FoldUniverse universe(30, 9);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 3).generate(6);
  for (const auto& rec : records) {
    const InputFeatures f = sample_features(rec, LibraryKind::kReduced);
    InputFeatures back;
    ASSERT_TRUE(store::decode_features(store::encode_features(f), back));
    EXPECT_EQ(back.target_id, f.target_id);
    EXPECT_EQ(back.length, f.length);
    EXPECT_EQ(back.msa_depth, f.msa_depth);
    EXPECT_EQ(back.neff, f.neff);  // bit-exact, not approx
    EXPECT_EQ(back.mean_identity, f.mean_identity);
    EXPECT_EQ(back.has_templates, f.has_templates);
    EXPECT_EQ(back.feature_bytes(), f.feature_bytes());
  }
}

Structure make_structure(int n) {
  Structure s("test/pred");
  for (int i = 0; i < n; ++i) {
    Residue r;
    r.aa = static_cast<char>('A' + (i % 20));
    r.heavy_atoms = 4 + (i % 8);
    const double x = 0.1 + i * 3.8;
    r.n = {x, 0.31 + i, -1.25};
    r.ca = {x + 1.1, 0.77 - i * 0.01, 2.5};
    r.c = {x + 2.2, 1.0 / 3.0, 0.625};
    r.o = {x + 2.9, -7.125, 1e-9 * i};
    r.has_cb = (i % 3) != 0;
    if (r.has_cb) r.cb = {x + 1.4, 1.5, -0.5 - i};
    r.has_sc = (i % 2) != 0;
    if (r.has_sc) r.sc = {x + 1.8, 2.25, 0.3 * i};
    s.add_residue(r);
  }
  return s;
}

TEST(StoreCodec, PredictionRoundTripBitExact) {
  store::PredictionArtifact a;
  a.top_model = 3;
  a.plddt = 87.4321098765;
  a.ptms = 0.71234567890123;
  a.true_tm = 1.0 / 7.0;  // not representable in short decimal
  a.true_lddt = 0.9999999999999999;
  a.recycles = 9;
  a.converged = true;
  a.dropped = false;
  for (int m = 0; m < 5; ++m) a.passes[m] = m + 1;
  a.oom_mask = 0b10010u;
  a.conv_mask = 0b01101u;
  a.has_structure = true;
  a.structure = make_structure(17);

  store::PredictionArtifact b;
  ASSERT_TRUE(store::decode_prediction(store::encode_prediction(a), b));
  EXPECT_EQ(b.top_model, a.top_model);
  EXPECT_EQ(b.plddt, a.plddt);
  EXPECT_EQ(b.ptms, a.ptms);
  EXPECT_EQ(b.true_tm, a.true_tm);
  EXPECT_EQ(b.true_lddt, a.true_lddt);
  EXPECT_EQ(b.recycles, a.recycles);
  EXPECT_EQ(b.converged, a.converged);
  EXPECT_EQ(b.dropped, a.dropped);
  for (int m = 0; m < 5; ++m) EXPECT_EQ(b.passes[m], a.passes[m]);
  EXPECT_EQ(b.oom_mask, a.oom_mask);
  EXPECT_EQ(b.conv_mask, a.conv_mask);
  ASSERT_TRUE(b.has_structure);
  ASSERT_EQ(b.structure.size(), a.structure.size());
  EXPECT_EQ(b.structure.name(), a.structure.name());
  for (std::size_t i = 0; i < a.structure.size(); ++i) {
    const Residue& ra = a.structure.residue(i);
    const Residue& rb = b.structure.residue(i);
    EXPECT_EQ(rb.aa, ra.aa);
    EXPECT_EQ(rb.heavy_atoms, ra.heavy_atoms);
    EXPECT_EQ(rb.ca.x, ra.ca.x);  // bit-exact coordinates
    EXPECT_EQ(rb.ca.y, ra.ca.y);
    EXPECT_EQ(rb.ca.z, ra.ca.z);
    EXPECT_EQ(rb.o.z, ra.o.z);
    EXPECT_EQ(rb.has_cb, ra.has_cb);
    EXPECT_EQ(rb.has_sc, ra.has_sc);
    if (ra.has_cb) {
      EXPECT_EQ(rb.cb.x, ra.cb.x);
    }
    if (ra.has_sc) {
      EXPECT_EQ(rb.sc.z, ra.sc.z);
    }
  }
}

TEST(StoreCodec, DroppedPredictionRoundTripsWithoutStructure) {
  store::PredictionArtifact a;
  a.dropped = true;
  a.oom_mask = 0b11111u;
  store::PredictionArtifact b;
  ASSERT_TRUE(store::decode_prediction(store::encode_prediction(a), b));
  EXPECT_TRUE(b.dropped);
  EXPECT_FALSE(b.has_structure);
  EXPECT_EQ(b.oom_mask, a.oom_mask);
}

TEST(StoreCodec, RelaxRoundTripBitExact) {
  store::RelaxArtifact a;
  a.clashes_before = 41;
  a.clashes_after = 0;
  a.bumps_before = 17;
  a.bumps_after = 2;
  a.heavy_atoms = 2531.0;
  a.energy_evaluations = 48123.5;
  store::RelaxArtifact b;
  ASSERT_TRUE(store::decode_relax(store::encode_relax(a), b));
  EXPECT_EQ(b.clashes_before, a.clashes_before);
  EXPECT_EQ(b.clashes_after, a.clashes_after);
  EXPECT_EQ(b.bumps_before, a.bumps_before);
  EXPECT_EQ(b.bumps_after, a.bumps_after);
  EXPECT_EQ(b.heavy_atoms, a.heavy_atoms);
  EXPECT_EQ(b.energy_evaluations, a.energy_evaluations);
}

TEST(StoreCodec, TornPayloadFailsToDecode) {
  store::PredictionArtifact a;
  a.top_model = 1;
  a.has_structure = true;
  a.structure = make_structure(8);
  const std::string full = store::encode_prediction(a);
  store::PredictionArtifact out;
  // Any strict prefix must fail: every line is sealed with `end`, so a
  // torn object can never decode into a plausible-but-wrong artifact.
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    EXPECT_FALSE(store::decode_prediction(full.substr(0, cut), out)) << "cut " << cut;
  }
  InputFeatures f;
  EXPECT_FALSE(store::decode_features("sffeat v1 id 10", f));
  store::RelaxArtifact r;
  EXPECT_FALSE(store::decode_relax("", r));
}

// ------------------------------------------------------------------ //
// Manifest durability.
// ------------------------------------------------------------------ //

TEST(StoreManifest, TornTailRecoveryAndCompaction) {
  const std::string dir = fresh_dir("store_manifest");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.sfstore";
  {
    store::Manifest m(path);
    m.load();
    m.append_put(key_of(1), 1000, 11, "a/features");
    m.append_put(key_of(2), 2000, 22, "b/features");
    m.append_evict(key_of(1));
    m.append_put(key_of(3), 3000, 33, "c/features");
  }
  // Tear the tail mid-line (a kill during append).
  const std::string full = read_file(path);
  write_file(path, full + "put deadbeef");
  {
    store::Manifest m(path);
    ASSERT_TRUE(m.load());
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.entries()[0].key, key_of(2));
    EXPECT_EQ(m.entries()[1].key, key_of(3));
    EXPECT_EQ(m.total_bytes(), 5000u);
    // Compaction preserved the original insertion counters, so eviction
    // order cannot change across a reopen.
    EXPECT_EQ(m.entries()[0].seq, 2u);
    EXPECT_EQ(m.entries()[1].seq, 3u);
    EXPECT_EQ(m.next_seq(), 4u);
  }
  // Compaction is idempotent: a clean reopen leaves the bytes alone.
  const std::string compacted = read_file(path);
  EXPECT_NE(compacted, full + "put deadbeef");
  {
    store::Manifest m(path);
    ASSERT_TRUE(m.load());
  }
  EXPECT_EQ(read_file(path), compacted);
}

TEST(StoreManifest, RejectsForeignHeader) {
  const std::string dir = fresh_dir("store_manifest_hdr");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.sfstore";
  write_file(path, "sfjournal v1 end\nmeasured 0 end\n");
  store::Manifest m(path);
  EXPECT_FALSE(m.load());
  EXPECT_EQ(m.size(), 0u);
}

// ------------------------------------------------------------------ //
// Store: eviction, corruption, pricing.
// ------------------------------------------------------------------ //

store::StagingPricer test_pricer() {
  store::StagingPricer p;
  p.replicas = 4;
  p.total_jobs = 16;
  return p;
}

TEST(ArtifactStore, PutGetRoundTripAndStats) {
  const std::string dir = fresh_dir("store_roundtrip");
  store::ArtifactStore s(dir);
  EXPECT_FALSE(s.open());  // cold
  s.begin_stage("features", test_pricer());
  s.put(key_of(1), "a/features", "payload-one", 4096.0);
  EXPECT_TRUE(s.contains(key_of(1)));
  const auto got = s.get(key_of(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-one");
  EXPECT_FALSE(s.get(key_of(2)).has_value());
  const store::StoreStats& st = s.stage_stats();
  EXPECT_EQ(st.puts, 1u);
  EXPECT_EQ(st.gets, 2u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.bytes_written, 4096.0);
  EXPECT_EQ(st.bytes_read, 4096.0);
  EXPECT_GT(st.read_s, 0.0);
  EXPECT_GT(st.write_s, 0.0);

  // Reopen warm: the artifact survives a process restart.
  store::ArtifactStore again(dir);
  EXPECT_TRUE(again.open());
  again.begin_stage("features", test_pricer());
  EXPECT_EQ(again.get(key_of(1)).value_or(""), "payload-one");
}

TEST(ArtifactStore, EvictionIsFifoAndSparesTheFreshPut) {
  const std::string dir = fresh_dir("store_evict");
  store::StorePolicy policy;
  policy.capacity_bytes = 2500;
  store::ArtifactStore s(dir, policy);
  s.open();
  s.begin_stage("features", test_pricer());
  s.put(key_of(1), "a", "one", 1000.0);
  s.put(key_of(2), "b", "two", 1000.0);
  s.put(key_of(3), "c", "three", 1000.0);  // pushes past 2500: evicts key 1
  EXPECT_FALSE(s.contains(key_of(1)));
  EXPECT_TRUE(s.contains(key_of(2)));
  EXPECT_TRUE(s.contains(key_of(3)));
  // An oversized artifact evicts everything else but itself survives.
  s.put(key_of(4), "d", "four", 9000.0);
  EXPECT_FALSE(s.contains(key_of(2)));
  EXPECT_FALSE(s.contains(key_of(3)));
  EXPECT_TRUE(s.contains(key_of(4)));
  EXPECT_EQ(s.total_stats().evictions, 3u);
}

TEST(ArtifactStore, EvictionOrderIsIdenticalAcrossReruns) {
  // The same call sequence against two fresh stores leaves bit-identical
  // manifests -- the determinism contract eviction rests on.
  std::string images[2];
  for (int run = 0; run < 2; ++run) {
    const std::string dir = fresh_dir("store_rerun_" + std::to_string(run));
    store::StorePolicy policy;
    policy.capacity_bytes = 5000;
    store::ArtifactStore s(dir, policy);
    s.open();
    s.begin_stage("features", test_pricer());
    for (int i = 0; i < 12; ++i) {
      s.put(key_of(i), "rec" + std::to_string(i), "payload" + std::to_string(i),
            1000.0 + 100.0 * i);
      if (i % 3 == 0) (void)s.get(key_of(i / 2));
    }
    // Force compaction to the canonical image before comparing.
    store::ArtifactStore reopened(dir);
    reopened.open();
    images[run] = read_file(dir + "/manifest.sfstore");
  }
  EXPECT_FALSE(images[0].empty());
  EXPECT_EQ(images[0], images[1]);
}

TEST(ArtifactStore, CorruptObjectIsAMissNeverWrongData) {
  const std::string dir = fresh_dir("store_corrupt");
  store::ArtifactStore s(dir);
  s.open();
  s.begin_stage("features", test_pricer());
  s.put(key_of(7), "x/features", "true-payload", 1000.0);
  write_file(s.object_path(key_of(7)), "corrupted bytes");
  EXPECT_FALSE(s.get(key_of(7)).has_value());
  EXPECT_FALSE(s.contains(key_of(7)));  // entry dropped, recompute path
  EXPECT_EQ(s.stage_stats().misses, 1u);

  s.put(key_of(8), "y/features", "gone", 1000.0);
  std::filesystem::remove(s.object_path(key_of(8)));
  EXPECT_FALSE(s.get(key_of(8)).has_value());
  EXPECT_FALSE(s.contains(key_of(8)));
}

TEST(StagingPricer, FewerReplicasMeansSlowerStaging) {
  const FilesystemModel fs;
  store::StagingPricer crowded{fs, 1, 96};
  store::StagingPricer spread{fs, 24, 96};
  EXPECT_GT(crowded.read_seconds(1e9), spread.read_seconds(1e9));
  EXPECT_GT(crowded.write_seconds(1e9), spread.write_seconds(1e9));
  EXPECT_GT(crowded.lookup_seconds(), spread.lookup_seconds());
  // A write is two metadata ops (create + rename) to a read's one.
  EXPECT_GT(spread.write_seconds(0.0), spread.read_seconds(0.0));
  // Bytes dominate metadata for large artifacts.
  EXPECT_GT(spread.read_seconds(1e12), spread.read_seconds(0.0) * 100);
}

// ------------------------------------------------------------------ //
// Campaign integration.
// ------------------------------------------------------------------ //

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 8;
  cfg.relax_sample = 4;
  return cfg;
}

void expect_campaign_eq(const CampaignReport& a, const CampaignReport& b) {
  EXPECT_EQ(a.features.wall_s, b.features.wall_s);
  EXPECT_EQ(a.features.node_hours, b.features.node_hours);
  EXPECT_EQ(a.features.tasks, b.features.tasks);
  EXPECT_EQ(a.inference.wall_s, b.inference.wall_s);
  EXPECT_EQ(a.inference.node_hours, b.inference.node_hours);
  EXPECT_EQ(a.inference.retry_attempts, b.inference.retry_attempts);
  EXPECT_EQ(a.relaxation.wall_s, b.relaxation.wall_s);
  EXPECT_EQ(a.relaxation.node_hours, b.relaxation.node_hours);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    SCOPED_TRACE("target " + std::to_string(i));
    EXPECT_EQ(a.targets[i].id, b.targets[i].id);
    EXPECT_EQ(a.targets[i].measured, b.targets[i].measured);
    EXPECT_EQ(a.targets[i].top_model, b.targets[i].top_model);
    EXPECT_EQ(a.targets[i].plddt, b.targets[i].plddt);
    EXPECT_EQ(a.targets[i].ptms, b.targets[i].ptms);
    EXPECT_EQ(a.targets[i].true_tm, b.targets[i].true_tm);
    EXPECT_EQ(a.targets[i].true_lddt, b.targets[i].true_lddt);
    EXPECT_EQ(a.targets[i].recycles, b.targets[i].recycles);
    EXPECT_EQ(a.targets[i].oom, b.targets[i].oom);
    EXPECT_EQ(a.targets[i].relaxed, b.targets[i].relaxed);
    EXPECT_EQ(a.targets[i].clashes_before, b.targets[i].clashes_before);
    EXPECT_EQ(a.targets[i].clashes_after, b.targets[i].clashes_after);
  }
  EXPECT_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_EQ(a.ptms.mean(), b.ptms.mean());
  EXPECT_EQ(a.recycles.mean(), b.recycles.mean());
  ASSERT_EQ(a.inference_records.size(), b.inference_records.size());
  for (std::size_t i = 0; i < a.inference_records.size(); ++i) {
    EXPECT_EQ(a.inference_records[i].start_s, b.inference_records[i].start_s);
    EXPECT_EQ(a.inference_records[i].end_s, b.inference_records[i].end_s);
  }
}

TEST(StoreCampaign, StoreOnMatchesStoreOffBitForBit) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(10);
  const PipelineConfig cfg = small_config();
  const Pipeline pipeline(universe, cfg);
  const CampaignReport off = pipeline.run(records);

  const std::string dir = fresh_dir("store_campaign");
  store::ArtifactStore artifacts(dir);
  EXPECT_FALSE(artifacts.open());
  const CampaignReport cold = pipeline.run(records, nullptr, nullptr, &artifacts);
  expect_campaign_eq(off, cold);
  // Cold pass populated all three stages.
  EXPECT_GT(artifacts.size(), 0u);
  EXPECT_EQ(artifacts.total_stats().hits, 0u);
  EXPECT_GT(artifacts.total_stats().puts, 0u);

  // A second run against the warm store still reports identically: hits
  // skip only the real recompute, never the modeled schedule.
  store::ArtifactStore warm(dir);
  EXPECT_TRUE(warm.open());
  const CampaignReport warm_run = pipeline.run(records, nullptr, nullptr, &warm);
  expect_campaign_eq(off, warm_run);
  EXPECT_EQ(warm.total_stats().misses, 0u);
  EXPECT_GT(warm.total_stats().hits, 0u);
  EXPECT_EQ(warm.total_stats().puts, 0u);
}

TEST(StoreCampaign, WarmResumeSkipsFeatureStageEntirely) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(10);
  const PipelineConfig cfg = small_config();
  const Pipeline pipeline(universe, cfg);
  const CampaignReport baseline = pipeline.run(records);

  // Journaled + stored run, then kill it right after the feature stage
  // seals (mid-inference: measured rows exist but the stage does not).
  const std::string dir = fresh_dir("store_resume");
  const std::string journal_path = ::testing::TempDir() + "store_resume.sfj";
  write_file(journal_path, "");
  {
    store::ArtifactStore artifacts(dir);
    artifacts.open();
    CampaignJournal journal(journal_path);
    pipeline.run(records, &journal, nullptr, &artifacts);
  }
  const std::string full = read_file(journal_path);
  const std::size_t seal = full.find("stage features");
  ASSERT_NE(seal, std::string::npos);
  std::size_t cut = full.find('\n', seal);
  ASSERT_NE(cut, std::string::npos);
  // Keep a few measured rows past the seal to model a mid-inference
  // kill, tearing the final line.
  for (int skip = 0; skip < 3; ++skip) {
    const std::size_t next = full.find('\n', cut + 1);
    if (next == std::string::npos) break;
    cut = next;
  }
  write_file(journal_path, full.substr(0, cut - 5));

  // Resume with the warm store and a trace recorder watching.
  store::ArtifactStore warm(dir);
  ASSERT_TRUE(warm.open());
  CampaignJournal journal(journal_path);
  obs::TraceRecorder recorder;
  const CampaignReport resumed = pipeline.run(records, &journal, &recorder, &warm);
  expect_campaign_eq(baseline, resumed);

  // Zero feature-stage task attempts: the stage is in the trace but ran
  // nothing -- the whole point of pairing the journal with the store.
  ASSERT_EQ(recorder.stages().size(), 3u);
  const obs::StageTrace& features = recorder.stages()[0];
  EXPECT_EQ(features.info.stage, "features");
  EXPECT_TRUE(features.spans.empty());
  EXPECT_TRUE(features.rounds.empty());
  ASSERT_TRUE(features.has_store);
  EXPECT_EQ(features.store.misses, 0u);
  EXPECT_EQ(features.store.hits, static_cast<std::uint64_t>(records.size()));
  EXPECT_EQ(features.store.puts, 0u);

  // The store's own per-stage window agrees with the trace.
  ASSERT_FALSE(warm.stage_history().empty());
  EXPECT_EQ(warm.stage_history()[0].first, "features");
  EXPECT_EQ(warm.stage_history()[0].second.misses, 0u);
}

TEST(StoreCampaign, SealedStageWithColdStoreRecomputesMissesInline) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(8);
  const PipelineConfig cfg = small_config();
  const Pipeline pipeline(universe, cfg);
  const CampaignReport baseline = pipeline.run(records);

  // Journal-complete campaign, but the store starts cold (e.g. the
  // cache directory was lost): every feature is a miss, recomputed
  // inline and re-stored, and the report still replays bit-for-bit.
  const std::string journal_path = ::testing::TempDir() + "store_coldresume.sfj";
  write_file(journal_path, "");
  {
    CampaignJournal journal(journal_path);
    pipeline.run(records, &journal);
  }
  const std::string dir = fresh_dir("store_cold_resume");
  store::ArtifactStore cold(dir);
  EXPECT_FALSE(cold.open());
  CampaignJournal journal(journal_path);
  const CampaignReport resumed = pipeline.run(records, &journal, nullptr, &cold);
  expect_campaign_eq(baseline, resumed);
  ASSERT_FALSE(cold.stage_history().empty());
  EXPECT_EQ(cold.stage_history()[0].second.misses,
            static_cast<std::uint64_t>(records.size()));
  EXPECT_EQ(cold.stage_history()[0].second.puts,
            static_cast<std::uint64_t>(records.size()));
}

TEST(StoreCampaign, FifoTraceStoreSectionMatchesPrePolicyByteImage) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(8);
  const PipelineConfig cfg = small_config();
  const Pipeline pipeline(universe, cfg);

  auto trace_with = [&](store::EvictionPolicy ep, const std::string& tag) {
    store::StorePolicy policy;
    policy.eviction = ep;
    store::ArtifactStore artifacts(fresh_dir("store_trace_" + tag), policy);
    artifacts.open();
    obs::TraceRecorder recorder;
    pipeline.run(records, nullptr, &recorder, &artifacts);
    const std::string path = ::testing::TempDir() + "store_trace_" + tag + ".json";
    obs::write_chrome_trace_file(path, recorder.stages(), nullptr);
    return read_file(path);
  };

  // Default-policy (FIFO) traces must keep the exact byte image of
  // builds that predate pluggable eviction: no "policy" key anywhere in
  // the store sections. This is the regression guard for PR 6 goldens.
  const std::string fifo = trace_with(store::EvictionPolicy::kFifo, "fifo");
  EXPECT_NE(fifo.find("\"store\":{"), std::string::npos);
  EXPECT_EQ(fifo.find("\"policy\""), std::string::npos);

  // Non-default policies announce themselves, and the name round-trips.
  const std::string lru = trace_with(store::EvictionPolicy::kLru, "lru");
  EXPECT_NE(lru.find("\"policy\":\"lru\""), std::string::npos);
  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::parse_chrome_trace(lru, doc, &error)) << error;
  ASSERT_FALSE(doc.stages.empty());
  for (const obs::StageTrace& st : doc.stages) {
    ASSERT_TRUE(st.has_store);
    EXPECT_EQ(st.store.policy, "lru");
  }
  obs::TraceDoc fifo_doc;
  ASSERT_TRUE(obs::parse_chrome_trace(fifo, fifo_doc, &error)) << error;
  for (const obs::StageTrace& st : fifo_doc.stages) EXPECT_TRUE(st.store.policy.empty());
}

}  // namespace
}  // namespace sf
