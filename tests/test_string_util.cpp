#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  abc\t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("summit", "sum"));
  EXPECT_FALSE(starts_with("sum", "summit"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(to_lower("AbC9"), "abc9"); }

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, Format) { EXPECT_EQ(format("%d-%s", 7, "x"), "7-x"); }

TEST(StringUtil, HumanDuration) {
  EXPECT_EQ(human_duration(5.2), "5.2s");
  EXPECT_EQ(human_duration(65.0), "1m 05s");
  EXPECT_EQ(human_duration(3725.0), "1h 02m 05s");
  EXPECT_EQ(human_duration(-3.0), "0.0s");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(2.1 * 1024.0 * 1024.0 * 1024.0 * 1024.0), "2.10 TB");
}

}  // namespace
}  // namespace sf
