// The observability subsystem's core guarantees:
//  * a recorded trace is a pure function of (task stream, fault plan,
//    canonical pool widths) -- byte-identical Chrome trace JSON across
//    the SimulatedExecutor and the ThreadedExecutor, at any worker or
//    thread count, on every rerun;
//  * when the executing backend's widths match the registered canonical
//    widths, the replayed schedule reconciles bit-for-bit with
//    MapResult's pool accounting;
//  * exports round-trip losslessly, metrics are exact functions of the
//    span list;
//  * a traced pipeline run produces the same CampaignReport as an
//    untraced one, and a kill/resume through the journal reproduces the
//    uninterrupted trace byte for byte;
//  * the journal compacts on open: duplicates, torn tails, and
//    superseded trec batches are dropped, and a reopen of an
//    already-canonical file never rewrites it.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dataflow/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace sf {
namespace {

// ------------------------------------------------------------------ //
// Executor-level determinism.
// ------------------------------------------------------------------ //

std::vector<TaskSpec> make_tasks(int n) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "t" + std::to_string(i);
    t.cost_hint = 40.0 + static_cast<double>(i % 9) * 7.0;
    tasks.push_back(t);
  }
  return tasks;
}

// The canonical pool shape every backend records against. Dispatch
// overhead and startup match SimulatedDataflowParams defaults so the
// width-matched simulated run reconciles.
obs::StageTraceInfo canonical_info() {
  obs::StageTraceInfo info;
  info.stage = "unit";
  info.primary = {16, 1.0};
  info.alt = {2, 1.0};
  return info;
}

FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.seed = 41;
  plan.crash_rate = 0.04;
  plan.transient_rate = 0.10;
  plan.transient_attempts = 1;
  plan.oom_rate = 0.06;
  plan.straggler_rate = 0.08;
  plan.straggler_factor = 3.0;
  plan.fs_stall_rate = 0.06;
  plan.fs_stall_base_s = 15.0;
  return plan;
}

RetryPolicy chaos_policy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.reroute_to_alt_pool = true;
  policy.retry_cost_scale = 1.25;
  policy.backoff_base_s = 20.0;
  policy.retry_order = TaskOrder::kDescendingCost;
  return policy;
}

// Records one chaotic map() through `exec` against the canonical pool
// shape and returns the rendered Chrome trace JSON.
std::string record_map(Executor& exec, obs::TraceRecorder& rec, MapResult& run) {
  const auto tasks = make_tasks(60);
  const FaultInjector inj(chaos_plan());
  rec.begin_stage(canonical_info());
  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt&) {
    TaskOutcome o;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  run = exec.map(tasks, fn, chaos_policy(), &inj, &rec);
  return obs::render_chrome_trace(rec.stages());
}

TEST(ObsTrace, ByteIdenticalAcrossBackendsWidthsAndReruns) {
  // Width-matched simulated baseline: 16 + 2, exactly the canonical
  // registration, so the recorder also reconciles against MapResult.
  SimulatedDataflowParams primary16;
  primary16.workers = 16;
  SimulatedDataflowParams alt2;
  alt2.workers = 2;
  SimulatedExecutor sim16{primary16, alt2};
  obs::TraceRecorder rec16;
  MapResult run16;
  const std::string baseline = record_map(sim16, rec16, run16);

  ASSERT_EQ(rec16.stages().size(), 1u);
  const obs::StageTrace& st = rec16.stages().front();
  // The plan actually exercised the interesting structure.
  EXPECT_GE(st.rounds.size(), 2u);
  EXPECT_EQ(static_cast<int>(st.spans.size()),
            static_cast<int>(run16.primary.records.size()) + run16.retry_attempts);
  bool any_alt = false, any_fault = false;
  for (const auto& s : st.spans) {
    any_alt = any_alt || s.alt_pool;
    any_fault = any_fault || s.fault != obs::SpanFault::kNone;
  }
  EXPECT_TRUE(any_alt);
  EXPECT_TRUE(any_fault);
  // Bit-exact reconcile against the executor's own accounting.
  EXPECT_EQ(rec16.reconcile_failures(), 0);
  EXPECT_EQ(st.primary_pool_s, run16.primary_pool_s());
  EXPECT_EQ(st.alt_pool_s, run16.alt_pool_s());

  // A narrower simulated pool: the actual schedule differs, the
  // recorded canonical trace must not.
  SimulatedDataflowParams primary3;
  primary3.workers = 3;
  SimulatedDataflowParams alt1;
  alt1.workers = 1;
  SimulatedExecutor sim3{primary3, alt1};
  obs::TraceRecorder rec3;
  MapResult run3;
  EXPECT_EQ(record_map(sim3, rec3, run3), baseline);
  EXPECT_EQ(rec3.reconcile_failures(), 0);  // width mismatch: reconcile skipped

  // The threaded backend, at two different thread counts: real work,
  // wall-clock records -- same canonical trace.
  ThreadedExecutor threaded4(4, 2);
  obs::TraceRecorder rec4;
  MapResult run4;
  EXPECT_EQ(record_map(threaded4, rec4, run4), baseline);
  EXPECT_EQ(rec4.reconcile_failures(), 0);  // not modeled: reconcile skipped

  ThreadedExecutor threaded2(2, 1);
  obs::TraceRecorder rec2;
  MapResult run2;
  EXPECT_EQ(record_map(threaded2, rec2, run2), baseline);

  // And a rerun of the baseline is bit-identical.
  SimulatedExecutor again{primary16, alt2};
  obs::TraceRecorder rec_again;
  MapResult run_again;
  EXPECT_EQ(record_map(again, rec_again, run_again), baseline);
}

TEST(ObsTrace, ChromeJsonRoundTripsLosslessly) {
  SimulatedDataflowParams primary;
  primary.workers = 16;
  SimulatedDataflowParams alt;
  alt.workers = 2;
  SimulatedExecutor sim{primary, alt};
  obs::TraceRecorder rec;
  MapResult run;
  const std::string json = record_map(sim, rec, run);

  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::parse_chrome_trace(json, doc, &error)) << error;
  ASSERT_EQ(doc.stages.size(), 1u);
  const obs::StageTrace& got = doc.stages.front();
  const obs::StageTrace& want = rec.stages().front();
  EXPECT_EQ(got.info.stage, "unit");
  EXPECT_EQ(got.info.primary.workers, want.info.primary.workers);
  EXPECT_EQ(got.info.alt.workers, want.info.alt.workers);
  EXPECT_EQ(got.info.dispatch_overhead_s, want.info.dispatch_overhead_s);
  EXPECT_EQ(got.info.startup_s, want.info.startup_s);
  ASSERT_EQ(got.rounds.size(), want.rounds.size());
  for (std::size_t r = 0; r < want.rounds.size(); ++r) {
    EXPECT_EQ(got.rounds[r].attempt, want.rounds[r].attempt);
    EXPECT_EQ(got.rounds[r].alt_pool, want.rounds[r].alt_pool);
    EXPECT_EQ(got.rounds[r].backoff_s, want.rounds[r].backoff_s);
    EXPECT_EQ(got.rounds[r].tasks, want.rounds[r].tasks);
  }
  ASSERT_EQ(got.spans.size(), want.spans.size());
  for (std::size_t i = 0; i < want.spans.size(); ++i) {
    EXPECT_EQ(got.spans[i].task_id, want.spans[i].task_id);
    EXPECT_EQ(got.spans[i].name, want.spans[i].name);
    EXPECT_EQ(got.spans[i].attempt, want.spans[i].attempt);
    EXPECT_EQ(got.spans[i].alt_pool, want.spans[i].alt_pool);
    EXPECT_EQ(got.spans[i].worker, want.spans[i].worker);
    EXPECT_EQ(got.spans[i].ok, want.spans[i].ok);
    EXPECT_EQ(got.spans[i].fault, want.spans[i].fault);
    EXPECT_EQ(got.spans[i].begin_s, want.spans[i].begin_s);  // %.17g round-trip
    EXPECT_EQ(got.spans[i].end_s, want.spans[i].end_s);
  }
  EXPECT_EQ(got.primary_pool_s, want.primary_pool_s);
  EXPECT_EQ(got.alt_pool_s, want.alt_pool_s);
  // Re-rendering the parsed document reproduces the bytes.
  EXPECT_EQ(obs::render_chrome_trace(doc.stages), json);
}

TEST(ObsTrace, SpansCsvHasOneRowPerAttempt) {
  SimulatedDataflowParams primary;
  primary.workers = 16;
  SimulatedDataflowParams alt;
  alt.workers = 2;
  SimulatedExecutor sim{primary, alt};
  obs::TraceRecorder rec;
  MapResult run;
  record_map(sim, rec, run);

  const std::string csv = obs::render_spans_csv(rec.stages());
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, rec.stages().front().spans.size() + 1);  // header + rows
  EXPECT_EQ(csv.rfind("stage,task_id,name,attempt,pool,worker,fault,ok,begin_s,end_s\n", 0), 0u);
}

// ------------------------------------------------------------------ //
// Metrics over a hand-built trace with known arithmetic.
// ------------------------------------------------------------------ //

obs::TraceSpan span(std::uint64_t id, int attempt, bool alt, int worker, bool ok,
                    obs::SpanFault fault, double begin, double end) {
  obs::TraceSpan s;
  s.task_id = id;
  s.name = "t" + std::to_string(id);
  s.attempt = attempt;
  s.alt_pool = alt;
  s.worker = worker;
  s.ok = ok;
  s.fault = fault;
  s.begin_s = begin;
  s.end_s = end;
  return s;
}

obs::StageTrace hand_trace() {
  obs::StageTrace st;
  st.info.stage = "unit";
  st.info.primary = {2, 1.0};
  st.info.alt = {1, 1.0};
  st.spans.push_back(span(0, 0, false, 0, true, obs::SpanFault::kNone, 0.0, 10.0));
  st.spans.push_back(span(1, 0, false, 1, true, obs::SpanFault::kNone, 0.0, 10.0));
  st.spans.push_back(span(2, 0, false, 0, false, obs::SpanFault::kTransient, 10.0, 20.0));
  st.spans.push_back(span(3, 0, false, 1, true, obs::SpanFault::kStraggler, 10.0, 60.0));
  st.spans.push_back(span(2, 1, true, 0, true, obs::SpanFault::kNone, 20.0, 30.0));
  obs::RoundInfo r0;
  r0.tasks = 4;
  st.rounds.push_back(r0);
  obs::RoundInfo r1;
  r1.attempt = 1;
  r1.alt_pool = true;
  r1.tasks = 1;
  st.rounds.push_back(r1);
  return st;
}

TEST(ObsMetrics, ExactOnHandBuiltTrace) {
  const obs::StageTrace st = hand_trace();
  const obs::StageMetrics m = obs::compute_stage_metrics(st);
  EXPECT_EQ(m.stage, "unit");
  EXPECT_EQ(m.tasks, 4);
  EXPECT_EQ(m.attempts, 5);
  EXPECT_EQ(m.failed_attempts, 1);
  EXPECT_EQ(m.retry_attempts, 1);
  EXPECT_EQ(m.alt_attempts, 1);
  EXPECT_EQ(m.makespan_s, 60.0);
  EXPECT_EQ(m.busy_s, 90.0);
  EXPECT_EQ(m.primary_busy_s, 80.0);
  EXPECT_EQ(m.alt_busy_s, 10.0);
  // Primary window [0, 60], 2 canonical workers: 80 / 120.
  EXPECT_DOUBLE_EQ(m.utilization, 80.0 / 120.0);
  // Worker 0 finishes its last primary span at 20, worker 1 at 60.
  EXPECT_EQ(m.finish_spread_s, 40.0);
  // Durations {10,10,10,50,10}: median 10, k=4 threshold 40 -> the 50s
  // straggler span alone, excess 40 over the median.
  EXPECT_EQ(m.stragglers.median_s, 10.0);
  EXPECT_EQ(m.stragglers.count, 1);
  EXPECT_EQ(m.stragglers.excess_s, 40.0);
  ASSERT_EQ(m.stragglers.worst.size(), 1u);
  EXPECT_EQ(m.stragglers.worst.front().task_id, 3u);
  // Fault classes in enum order: transient bills the failed attempt in
  // full, the straggler bills its dilation over the median.
  ASSERT_EQ(m.faults.size(), 2u);
  EXPECT_EQ(m.faults[0].fault, obs::SpanFault::kTransient);
  EXPECT_EQ(m.faults[0].attempts, 1);
  EXPECT_EQ(m.faults[0].lost_s, 10.0);
  EXPECT_EQ(m.faults[1].fault, obs::SpanFault::kStraggler);
  EXPECT_EQ(m.faults[1].attempts, 1);
  EXPECT_EQ(m.faults[1].lost_s, 40.0);

  const std::vector<double> busy = obs::worker_busy_timeline(st);
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_EQ(busy[0], 20.0);
  EXPECT_EQ(busy[1], 60.0);

  const std::string timeline = obs::render_trace_timeline(st, 10, 60);
  EXPECT_NE(timeline.find("w00000"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find('|'), std::string::npos);
}

// ------------------------------------------------------------------ //
// Pipeline level: tracing is a pure observer, and resume reproduces
// the uninterrupted trace.
// ------------------------------------------------------------------ //

PipelineConfig traced_campaign_config() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 6;
  cfg.relax_sample = 3;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  cfg.faults.seed = 77;
  cfg.faults.crash_rate = 0.06;
  cfg.faults.transient_rate = 0.08;
  cfg.faults.transient_attempts = 1;
  cfg.faults.oom_rate = 0.05;
  cfg.faults.straggler_rate = 0.1;
  cfg.faults.straggler_factor = 3.0;
  cfg.faults.fs_stall_rate = 0.05;
  cfg.faults.fs_stall_base_s = 20.0;
  return cfg;
}

std::string campaign_text(const CampaignReport& report) {
  std::ostringstream os;
  print_campaign(os, report, species_d_vulgaris());
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(ObsPipeline, TracingIsAPureObserverOfTheCampaign) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = traced_campaign_config();
  const Pipeline pipeline(universe, cfg);

  const CampaignReport untraced = pipeline.run(records);

  obs::TraceRecorder rec_a;
  const CampaignReport traced = pipeline.run(records, nullptr, &rec_a);
  // The report is byte-identical with and without the sink attached.
  EXPECT_EQ(campaign_text(traced), campaign_text(untraced));
  EXPECT_EQ(rec_a.reconcile_failures(), 0);
  ASSERT_EQ(rec_a.stages().size(), 3u);
  EXPECT_EQ(rec_a.stages()[0].info.stage, "features");
  EXPECT_EQ(rec_a.stages()[1].info.stage, "inference");
  EXPECT_EQ(rec_a.stages()[2].info.stage, "relaxation");
  for (const auto& st : rec_a.stages()) EXPECT_FALSE(st.spans.empty());

  // A traced rerun is bit-identical.
  obs::TraceRecorder rec_b;
  pipeline.run(records, nullptr, &rec_b);
  EXPECT_EQ(obs::render_chrome_trace(rec_b.stages()), obs::render_chrome_trace(rec_a.stages()));
}

TEST(ObsPipeline, KillResumeReproducesTheUninterruptedTrace) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = traced_campaign_config();
  const Pipeline pipeline(universe, cfg);

  obs::TraceRecorder baseline_rec;
  const CampaignReport baseline = pipeline.run(records, nullptr, &baseline_rec);
  const std::string baseline_json = obs::render_chrome_trace(baseline_rec.stages());

  // A journaled traced run matches the unjournaled one.
  const std::string dir = ::testing::TempDir();
  const std::string full_path = dir + "obs_journal_full.sfj";
  write_file(full_path, "");
  {
    CampaignJournal journal(full_path);
    obs::TraceRecorder rec;
    const CampaignReport journaled = pipeline.run(records, &journal, &rec);
    EXPECT_EQ(campaign_text(journaled), campaign_text(baseline));
    EXPECT_EQ(obs::render_chrome_trace(rec.stages()), baseline_json);
  }
  const std::string full = read_file(full_path);
  ASSERT_NE(full.find("sfjournal v1"), std::string::npos);

  // Kill at assorted byte prefixes: clean line boundaries plus torn
  // mid-line tails. Every resume must reproduce the baseline trace.
  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') cuts.push_back(pos + 1);
  }
  ASSERT_GE(cuts.size(), 4u);
  std::vector<std::size_t> selected;
  const std::size_t stride = std::max<std::size_t>(1, cuts.size() / 6);
  for (std::size_t i = 0; i < cuts.size(); i += stride) selected.push_back(cuts[i]);
  selected.push_back(cuts[0] + 3);  // torn tail just past the header
  const std::size_t mid_line = cuts.size() / 2;
  selected.push_back((cuts[mid_line - 1] + cuts[mid_line]) / 2);  // torn mid-file tail

  int resumed_runs = 0;
  for (const std::size_t cut : selected) {
    const std::string path = dir + "obs_journal_cut_" + std::to_string(cut) + ".sfj";
    write_file(path, full.substr(0, std::min(cut, full.size())));
    CampaignJournal journal(path);
    obs::TraceRecorder rec;
    const CampaignReport resumed = pipeline.run(records, &journal, &rec);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    EXPECT_EQ(campaign_text(resumed), campaign_text(baseline));
    EXPECT_EQ(obs::render_chrome_trace(rec.stages()), baseline_json);
    EXPECT_EQ(rec.reconcile_failures(), 0);
    ++resumed_runs;
  }
  EXPECT_GE(resumed_runs, 6);

  // Resuming from the fully sealed (and by now compacted) journal
  // re-derives every span without touching the journal's results.
  {
    CampaignJournal journal(full_path);
    obs::TraceRecorder rec;
    const CampaignReport resumed = pipeline.run(records, &journal, &rec);
    EXPECT_EQ(campaign_text(resumed), campaign_text(baseline));
    EXPECT_EQ(obs::render_chrome_trace(rec.stages()), baseline_json);
  }
}

// ------------------------------------------------------------------ //
// Journal compact-on-open.
// ------------------------------------------------------------------ //

TEST(ObsJournal, CompactionDropsSupersededTrecsAndIsIdempotent) {
  const std::string path = ::testing::TempDir() + "obs_journal_compact.sfj";
  write_file(path, "");
  StageReport report;
  report.name = "inference";
  report.wall_s = 512.25;
  report.tasks = 3;
  {
    CampaignJournal journal(path);
    journal.open(0xBEEFULL);
    JournalMeasuredRow row;
    row.index = 2;
    row.plddt = 81.5;
    row.top_model = 1;
    journal.record_measured(row);
    row.plddt = 10.0;  // duplicate index: first write wins
    journal.record_measured(row);
    std::vector<TaskRecord> first(2), second(3);
    for (std::size_t i = 0; i < first.size(); ++i) {
      first[i].task_id = i;
      first[i].name = "a" + std::to_string(i);
      first[i].worker = static_cast<int>(i);
      first[i].end_s = 5.0;
    }
    for (std::size_t i = 0; i < second.size(); ++i) {
      second[i].task_id = i;
      second[i].name = "b" + std::to_string(i);
      second[i].worker = static_cast<int>(i);
      second[i].end_s = 7.5;
    }
    journal.record_task_records(first);
    journal.record_task_records(second);  // supersedes `first`
    journal.record_stage_complete(StageKind::kInference, report);
  }
  {  // a kill mid-write: torn line plus garbage, no trailing newline
    std::ofstream out(path, std::ios::app);
    out << "measured 9 1 44.0\nnot a journal line";
  }
  const std::string raw = read_file(path);
  EXPECT_NE(raw.find("trecbatch 2 end"), std::string::npos);
  EXPECT_NE(raw.find("trecbatch 3 end"), std::string::npos);

  {
    CampaignJournal journal(path);
    EXPECT_TRUE(journal.open(0xBEEFULL));
    // Only the last batch survives, and the duplicate row kept its
    // first value.
    ASSERT_EQ(journal.inference_task_records().size(), 3u);
    EXPECT_EQ(journal.inference_task_records()[0].name, "b0");
    ASSERT_NE(journal.measured_row(2), nullptr);
    EXPECT_EQ(journal.measured_row(2)->plddt, 81.5);
    EXPECT_EQ(journal.measured_row(9), nullptr);  // torn tail discarded
    EXPECT_EQ(journal.stage_report(StageKind::kInference)->wall_s, 512.25);
  }
  const std::string compacted = read_file(path);
  EXPECT_LT(compacted.size(), raw.size());
  EXPECT_EQ(compacted.find("trecbatch 2 end"), std::string::npos);
  EXPECT_NE(compacted.find("trecbatch 3 end"), std::string::npos);
  EXPECT_EQ(compacted.find("a0"), std::string::npos);
  EXPECT_EQ(compacted.find("not a journal line"), std::string::npos);
  EXPECT_EQ(compacted.back(), '\n');

  // Reopening the canonical file is a no-op: same bytes, same state.
  {
    CampaignJournal journal(path);
    EXPECT_TRUE(journal.open(0xBEEFULL));
    EXPECT_EQ(journal.inference_task_records().size(), 3u);
  }
  EXPECT_EQ(read_file(path), compacted);
}

TEST(ObsJournal, CompactionDropsTrecsFromUnsealedInference) {
  const std::string path = ::testing::TempDir() + "obs_journal_unsealed.sfj";
  write_file(path, "");
  {
    CampaignJournal journal(path);
    journal.open(0xBEEFULL);
    std::vector<TaskRecord> recs(2);
    recs[0].task_id = 0;
    recs[0].name = "x0";
    recs[1].task_id = 1;
    recs[1].name = "x1";
    journal.record_task_records(recs);
    // Inference never seals: a kill here means the timeline is partial.
  }
  ASSERT_NE(read_file(path).find("trecbatch 2 end"), std::string::npos);
  {
    CampaignJournal journal(path);
    journal.open(0xBEEFULL);
    EXPECT_TRUE(journal.inference_task_records().empty());
  }
  // The compacted image dropped the untrustworthy batch entirely.
  EXPECT_EQ(read_file(path).find("trecbatch"), std::string::npos);
}

}  // namespace
}  // namespace sf
