// core/pair_campaign: PPI screening with pair-keyed caching and a
// kill-safe pair journal.
//
// Locks the campaign's contract end to end:
//  * pair keys are order-normalized (key(A,B) == key(B,A)) and
//    sensitive to every other input;
//  * a K-chain cold screen computes each chain's features exactly once
//    (K feature misses, K puts), and a warm store turns the whole
//    feature stage into hits;
//  * a journal-sealed feature stage plus a warm store resumes with ZERO
//    feature-stage task attempts;
//  * stdout/report is byte-identical across executor backends, thread
//    counts, store configurations, and reruns;
//  * under an active fault plan, a journal truncated at any byte prefix
//    resumes to a bit-identical report -- no pair task billed twice.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/pair_campaign.hpp"
#include "core/pipeline.hpp"
#include "dataflow/executor.hpp"
#include "obs/trace.hpp"
#include "store/artifact_store.hpp"
#include "store/key.hpp"

namespace sf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PipelineConfig pair_cfg() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  return cfg;
}

// The chaos variant: same fault plan shape as the single-chain chaos
// suite, so retries, reroutes, and backoff all fire inside the sweep.
PipelineConfig chaos_pair_cfg() {
  PipelineConfig cfg = pair_cfg();
  cfg.faults.seed = 77;
  cfg.faults.crash_rate = 0.06;
  cfg.faults.transient_rate = 0.08;
  cfg.faults.transient_attempts = 1;
  cfg.faults.oom_rate = 0.05;
  cfg.faults.straggler_rate = 0.1;
  cfg.faults.straggler_factor = 3.0;
  cfg.faults.fs_stall_rate = 0.05;
  cfg.faults.fs_stall_base_s = 20.0;
  return cfg;
}

std::vector<ProteinRecord> sample_records(int n) {
  FoldUniverse universe(40, 31);
  return ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(n);
}

std::string render(const PairCampaignReport& r) {
  std::ostringstream ss;
  print_pair_campaign(ss, r);
  return ss.str();
}

void expect_stage_eq(const StageReport& a, const StageReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.node_hours, b.node_hours);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.rerouted_tasks, b.rerouted_tasks);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.finish_spread_s, b.finish_spread_s);
  EXPECT_EQ(a.faults.crash_attempts, b.faults.crash_attempts);
  EXPECT_EQ(a.faults.transient_attempts, b.faults.transient_attempts);
  EXPECT_EQ(a.faults.oom_attempts, b.faults.oom_attempts);
  EXPECT_EQ(a.faults.straggler_attempts, b.faults.straggler_attempts);
  EXPECT_EQ(a.faults.stalled_attempts, b.faults.stalled_attempts);
  EXPECT_EQ(a.faults.lost_work_s, b.faults.lost_work_s);
  EXPECT_EQ(a.faults.backoff_delay_s, b.faults.backoff_delay_s);
}

void expect_pair_report_eq(const PairCampaignReport& a, const PairCampaignReport& b) {
  // The printed summary is the byte-level contract ...
  EXPECT_EQ(render(a), render(b));
  // ... and the fields behind it must agree exactly, not just in print.
  expect_stage_eq(a.features, b.features);
  expect_stage_eq(a.inference, b.inference);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t k = 0; k < a.pairs.size(); ++k) {
    SCOPED_TRACE("pair " + std::to_string(k));
    EXPECT_EQ(a.pairs[k].a, b.pairs[k].a);
    EXPECT_EQ(a.pairs[k].b, b.pairs[k].b);
    EXPECT_EQ(a.pairs[k].interface_score, b.pairs[k].interface_score);
    EXPECT_EQ(a.pairs[k].ptms, b.pairs[k].ptms);
    EXPECT_EQ(a.pairs[k].recycles, b.pairs[k].recycles);
    EXPECT_EQ(a.pairs[k].oom, b.pairs[k].oom);
    EXPECT_EQ(a.pairs[k].truly_interacting, b.pairs[k].truly_interacting);
    EXPECT_EQ(a.pairs[k].called_positive, b.pairs[k].called_positive);
  }
  EXPECT_EQ(a.screened, b.screened);
  EXPECT_EQ(a.oom_pairs, b.oom_pairs);
  EXPECT_EQ(a.positives, b.positives);
  EXPECT_EQ(a.true_positives, b.true_positives);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.binder_iscore.count(), b.binder_iscore.count());
  EXPECT_EQ(a.binder_iscore.mean(), b.binder_iscore.mean());
  EXPECT_EQ(a.nonbinder_iscore.count(), b.nonbinder_iscore.count());
  EXPECT_EQ(a.nonbinder_iscore.mean(), b.nonbinder_iscore.mean());
}

// ------------------------------------------------------------------ //
// Pair keys.
// ------------------------------------------------------------------ //

TEST(PairKey, OrderNormalizedAndSensitiveToEverythingElse) {
  const std::uint64_t fa = 0x1111aaaaULL;
  const std::uint64_t fb = 0x2222bbbbULL;
  const store::ArtifactKey ab = store::pair_artifact_key(fa, fb, "pair", 7);
  // The whole point: a complex prediction is addressed by the unordered
  // pair, so task ordering can never split the cache.
  EXPECT_EQ(ab, store::pair_artifact_key(fb, fa, "pair", 7));
  EXPECT_NE(ab, store::pair_artifact_key(fa, fb, "pair", 8));
  EXPECT_NE(ab, store::pair_artifact_key(fa, fb, "features", 7));
  EXPECT_NE(ab, store::pair_artifact_key(fa, fa, "pair", 7));
  EXPECT_NE(ab, store::pair_artifact_key(fa, fb + 1, "pair", 7));
  // And a pair key never collides with a single-record key built from
  // either fingerprint.
  EXPECT_NE(ab, store::artifact_key(fa, "pair", 7));
  EXPECT_NE(ab, store::artifact_key(fb, "pair", 7));
}

TEST(PairCampaign, EnumeratePairsIsCanonicalAndTruncates) {
  const auto all = PairCampaign::enumerate_pairs(5, 0);
  ASSERT_EQ(all.size(), 10u);
  // i-major with i < j: (0,1) (0,2) ... (3,4).
  EXPECT_EQ(all.front(), (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(all[4], (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(all.back(), (std::pair<std::size_t, std::size_t>{3, 4}));
  for (const auto& [i, j] : all) EXPECT_LT(i, j);

  const auto capped = PairCampaign::enumerate_pairs(5, 3);
  ASSERT_EQ(capped.size(), 3u);
  EXPECT_EQ(capped, decltype(capped)(all.begin(), all.begin() + 3));
  EXPECT_TRUE(PairCampaign::enumerate_pairs(1, 0).empty());
  EXPECT_TRUE(PairCampaign::enumerate_pairs(0, 0).empty());
}

TEST(PairCampaign, TiledOrderIsAStableBlockedPermutation) {
  const auto pairs = PairCampaign::enumerate_pairs(6, 0);  // 15 pairs
  // tile == 0: identity, the canonical i-major order untouched.
  const auto identity = PairCampaign::tiled_order(pairs, 0);
  for (std::size_t k = 0; k < identity.size(); ++k) EXPECT_EQ(identity[k], k);
  // A tile wider than the chain set is also the identity.
  EXPECT_EQ(PairCampaign::tiled_order(pairs, 64), identity);

  const auto blocked = PairCampaign::tiled_order(pairs, 2);
  // A permutation: every canonical index appears exactly once.
  std::vector<std::size_t> sorted = blocked;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity);
  // Visit order is non-decreasing in (a/tile, b/tile), and canonical
  // order is preserved inside each block pair (stable sort).
  for (std::size_t k = 1; k < blocked.size(); ++k) {
    const auto& prev = pairs[blocked[k - 1]];
    const auto& cur = pairs[blocked[k]];
    const auto prev_block = std::make_pair(prev.first / 2, prev.second / 2);
    const auto cur_block = std::make_pair(cur.first / 2, cur.second / 2);
    EXPECT_LE(prev_block, cur_block);
    if (prev_block == cur_block) EXPECT_LT(blocked[k - 1], blocked[k]);
  }
  // Block (0,1) pairs -- (0,2) (0,3) (1,2) (1,3) -- are visited
  // together, right after the diagonal block (0,0)'s single pair (0,1).
  ASSERT_GE(blocked.size(), 5u);
  EXPECT_EQ(pairs[blocked[0]], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(pairs[blocked[1]], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(pairs[blocked[2]], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(pairs[blocked[3]], (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(pairs[blocked[4]], (std::pair<std::size_t, std::size_t>{1, 3}));
}

TEST(PairCampaign, TiledEnumerationKeepsEveryReportByte) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PipelineConfig cfg = chaos_pair_cfg();  // faults on: the hard case
  const PairCampaign canonical(universe, cfg);
  const PairCampaignReport baseline = canonical.run(records);

  for (const std::size_t tile : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    SCOPED_TRACE("tile " + std::to_string(tile));
    PairCampaignConfig pc;
    pc.tile = tile;
    const PairCampaign tiled(universe, cfg, pc);
    // Same pairs, same scores, same aggregates, same node-hours -- the
    // visit order is invisible in the report, down to the byte.
    expect_pair_report_eq(baseline, tiled.run(records));
    // But it IS a different campaign identity: a journal written under
    // one tiling must not be replayed under another.
    EXPECT_NE(pair_campaign_fingerprint(cfg, records, pc),
              pair_campaign_fingerprint(cfg, records, PairCampaignConfig{}));
  }
  // tile == 0 is the canonical campaign, fingerprint included.
  EXPECT_EQ(pair_campaign_fingerprint(cfg, records, PairCampaignConfig{}),
            pair_campaign_fingerprint(cfg, records, {}));
}

// ------------------------------------------------------------------ //
// Determinism: backends, thread counts, reruns, stores.
// ------------------------------------------------------------------ //

TEST(PairCampaign, ReportByteIdenticalAcrossBackendsThreadCountsAndReruns) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(10);
  const PipelineConfig cfg = chaos_pair_cfg();  // faults on: retries in play
  const PairCampaign campaign(universe, cfg);

  const PairCampaignReport baseline = campaign.run(records);
  EXPECT_EQ(static_cast<std::size_t>(baseline.pairs.size()), 45u);
  EXPECT_GT(baseline.screened, 0);
  EXPECT_GT(baseline.total_summit_node_hours(), 0.0);

  // Rerun: bit-identical.
  expect_pair_report_eq(baseline, campaign.run(records));

  // Explicit simulated overrides (the same canonical pools the default
  // path builds): bit-identical.
  {
    SimulatedExecutor feat = make_stage_executor(cfg, StageKind::kFeatures);
    SimulatedExecutor pair = make_stage_executor(cfg, StageKind::kInference);
    expect_pair_report_eq(baseline,
                          campaign.run(records, nullptr, nullptr, nullptr, &feat, &pair));
  }

  // Real threads, two different widths: the work actually runs on host
  // threads, the report still prices the canonical modeled schedule.
  {
    ThreadedExecutor feat(3), pair(3, 2);
    expect_pair_report_eq(baseline,
                          campaign.run(records, nullptr, nullptr, nullptr, &feat, &pair));
  }
  {
    ThreadedExecutor feat(7, 1), pair(1, 1);
    expect_pair_report_eq(baseline,
                          campaign.run(records, nullptr, nullptr, nullptr, &feat, &pair));
  }
}

TEST(PairCampaign, StoreUnderAnyEvictionPolicyNeverChangesStdout) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PairCampaign campaign(universe, pair_cfg());
  const std::string golden = render(campaign.run(records));

  using store::EvictionPolicy;
  for (const EvictionPolicy ep :
       {EvictionPolicy::kFifo, EvictionPolicy::kLru, EvictionPolicy::kCostAware}) {
    SCOPED_TRACE(store::eviction_policy_name(ep));
    const std::string dir =
        fresh_dir(std::string("pair_policy_") + store::eviction_policy_name(ep));
    store::StorePolicy policy;
    policy.eviction = ep;
    // Tight enough that a cold screen must evict continuously.
    policy.capacity_bytes = 400000;
    {
      store::ArtifactStore cold(dir, policy);
      EXPECT_FALSE(cold.open());
      EXPECT_EQ(golden, render(campaign.run(records, nullptr, nullptr, &cold)));
      EXPECT_GT(cold.total_stats().evictions, 0u);
    }
    // Warm (and partially evicted) rerun: still the same bytes.
    store::ArtifactStore warm(dir, policy);
    EXPECT_TRUE(warm.open());
    EXPECT_EQ(golden, render(campaign.run(records, nullptr, nullptr, &warm)));
    EXPECT_GT(warm.total_stats().hits, 0u);
  }
}

TEST(PairCampaign, ColdRunComputesEachChainsFeaturesExactlyOnce) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(10);
  const std::size_t K = records.size();
  const std::size_t P = K * (K - 1) / 2;
  const PairCampaign campaign(universe, pair_cfg());

  const std::string dir = fresh_dir("pair_cold_once");
  {
    store::ArtifactStore cold(dir);
    EXPECT_FALSE(cold.open());
    campaign.run(records, nullptr, nullptr, &cold);
    ASSERT_EQ(cold.stage_history().size(), 2u);
    const auto& feat = cold.stage_history()[0];
    EXPECT_EQ(feat.first, "pair-features");
    // One get + one miss + one put per chain: features are computed
    // exactly once each, however many pairs reuse them.
    EXPECT_EQ(feat.second.gets, K);
    EXPECT_EQ(feat.second.misses, K);
    EXPECT_EQ(feat.second.hits, 0u);
    EXPECT_EQ(feat.second.puts, K);
    const auto& pairs = cold.stage_history()[1];
    EXPECT_EQ(pairs.first, "pair-inference");
    // Every cold pair misses its pair artifact, stages both chains'
    // features back in (hits, unbounded store), and puts its result.
    EXPECT_EQ(pairs.second.gets, 3 * P);
    EXPECT_EQ(pairs.second.misses, P);
    EXPECT_EQ(pairs.second.hits, 2 * P);
    EXPECT_EQ(pairs.second.puts, P);
  }
  // Warm rerun: all hits, nothing recomputed anywhere.
  store::ArtifactStore warm(dir);
  EXPECT_TRUE(warm.open());
  campaign.run(records, nullptr, nullptr, &warm);
  ASSERT_EQ(warm.stage_history().size(), 2u);
  EXPECT_EQ(warm.stage_history()[0].second.hits, K);
  EXPECT_EQ(warm.stage_history()[0].second.misses, 0u);
  EXPECT_EQ(warm.stage_history()[0].second.puts, 0u);
  EXPECT_EQ(warm.stage_history()[1].second.gets, P);
  EXPECT_EQ(warm.stage_history()[1].second.hits, P);
  EXPECT_EQ(warm.stage_history()[1].second.puts, 0u);
}

TEST(PairCampaign, SealedJournalWithWarmStoreRunsZeroFeatureAttempts) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PairCampaign campaign(universe, pair_cfg());
  const PairCampaignReport baseline = campaign.run(records);

  const std::string dir = fresh_dir("pair_warm_resume");
  const std::string journal_path = ::testing::TempDir() + "pair_warm_resume.sfpj";
  write_file(journal_path, "");
  {
    store::ArtifactStore cold(dir);
    cold.open();
    PairJournal journal(journal_path);
    const PairCampaignReport first = campaign.run(records, &journal, nullptr, &cold);
    expect_pair_report_eq(baseline, first);
  }
  ASSERT_NE(read_file(journal_path).find("stage features"), std::string::npos);

  // Resume against the sealed journal + warm store, with a recorder
  // watching: the feature stage appears in the trace but ran NOTHING.
  store::ArtifactStore warm(dir);
  ASSERT_TRUE(warm.open());
  PairJournal journal(journal_path);
  obs::TraceRecorder recorder;
  const PairCampaignReport resumed = campaign.run(records, &journal, &recorder, &warm);
  expect_pair_report_eq(baseline, resumed);

  ASSERT_EQ(recorder.stages().size(), 2u);
  const obs::StageTrace& features = recorder.stages()[0];
  EXPECT_EQ(features.info.stage, "pair-features");
  EXPECT_TRUE(features.spans.empty());
  EXPECT_TRUE(features.rounds.empty());
  ASSERT_TRUE(features.has_store);
  EXPECT_EQ(features.store.misses, 0u);
  EXPECT_EQ(features.store.hits, static_cast<std::uint64_t>(records.size()));
  EXPECT_EQ(features.store.puts, 0u);
  // The pair map re-ran for its spans (sealed + tracing), like every
  // single-chain stage.
  EXPECT_EQ(recorder.stages()[1].info.stage, "pair-inference");
  EXPECT_FALSE(recorder.stages()[1].spans.empty());

  // The store agrees: zero feature recomputes on resume.
  ASSERT_FALSE(warm.stage_history().empty());
  EXPECT_EQ(warm.stage_history()[0].first, "pair-features");
  EXPECT_EQ(warm.stage_history()[0].second.misses, 0u);
}

// ------------------------------------------------------------------ //
// Kill/resume under chaos.
// ------------------------------------------------------------------ //

TEST(PairCampaign, JournalResumeReproducesUninterruptedRunAtEveryCut) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PipelineConfig cfg = chaos_pair_cfg();
  const PairCampaign campaign(universe, cfg);

  const PairCampaignReport baseline = campaign.run(records);
  const std::string dir = ::testing::TempDir();
  const std::string full_path = dir + "pair_journal_full.sfpj";
  write_file(full_path, "");
  {
    PairJournal journal(full_path);
    const PairCampaignReport journaled = campaign.run(records, &journal);
    expect_pair_report_eq(baseline, journaled);
  }
  const std::string full = read_file(full_path);
  ASSERT_NE(full.find("sfpairj v1"), std::string::npos);
  ASSERT_NE(full.find("pair "), std::string::npos);
  ASSERT_NE(full.find("stage features"), std::string::npos);
  ASSERT_NE(full.find("stage inference"), std::string::npos);

  // Kill points: every line boundary, plus torn mid-line tails.
  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') cuts.push_back(pos + 1);
  }
  const std::size_t line_cuts = cuts.size();
  for (std::size_t i = 0; i + 1 < line_cuts; i += 3) {
    const std::size_t mid = (cuts[i] + cuts[i + 1]) / 2;
    if (mid > cuts[i]) cuts.push_back(mid);
  }
  std::vector<std::size_t> selected;
  const std::size_t max_clean = 24;
  const std::size_t stride = std::max<std::size_t>(1, line_cuts / max_clean);
  for (std::size_t i = 0; i < line_cuts; i += stride) selected.push_back(cuts[i]);
  for (std::size_t i = line_cuts; i < cuts.size(); i += 2) selected.push_back(cuts[i]);

  int resumed_runs = 0;
  for (const std::size_t cut : selected) {
    const std::string path = dir + "pair_journal_cut_" + std::to_string(cut) + ".sfpj";
    write_file(path, full.substr(0, cut));
    PairJournal journal(path);
    const PairCampaignReport resumed = campaign.run(records, &journal);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    // Bit-identical report -- node-hours included, so no pair task was
    // billed twice (or dropped) at any truncation point.
    expect_pair_report_eq(baseline, resumed);
    ++resumed_runs;
  }
  EXPECT_GE(resumed_runs, 20);

  // Fully sealed journal: both stage reports replay without any map.
  {
    PairJournal journal(full_path);
    expect_pair_report_eq(baseline, campaign.run(records, &journal));
  }
}

TEST(PairCampaign, JournalRejectsForeignFingerprint) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PipelineConfig cfg = pair_cfg();
  const PairCampaign campaign(universe, cfg);
  const PairCampaignReport baseline = campaign.run(records);

  const std::string path = ::testing::TempDir() + "pair_journal_foreign.sfpj";
  write_file(path, "");
  {
    PairJournal journal(path);
    campaign.run(records, &journal);
  }
  // A different screening config (cutoff moved) is a different campaign:
  // its fingerprint must disown the journal.
  PairCampaignConfig other;
  other.iscore_cutoff = 0.5;
  {
    PairJournal journal(path);
    EXPECT_FALSE(journal.open(pair_campaign_fingerprint(cfg, records, other)));
  }
  // The original campaign, rerun against the now-reset journal, still
  // reproduces its baseline from scratch.
  {
    PairJournal journal(path);
    expect_pair_report_eq(baseline, campaign.run(records, &journal));
  }
}

}  // namespace
}  // namespace sf
