#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <sstream>

#include "dataflow/simulated.hpp"
#include "dataflow/stats.hpp"
#include "dataflow/task.hpp"
#include "dataflow/threaded.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<TaskSpec> make_tasks(int n, std::uint64_t cost_seed = 3) {
  Rng rng(cost_seed);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "task" + std::to_string(i);
    t.cost_hint = rng.lognormal(4.0, 0.8);
    t.payload = static_cast<std::size_t>(i);
    tasks.push_back(t);
  }
  return tasks;
}

TEST(TaskOrder, Policies) {
  auto tasks = make_tasks(50);
  apply_order(tasks, TaskOrder::kDescendingCost);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i - 1].cost_hint, tasks[i].cost_hint);
  }
  apply_order(tasks, TaskOrder::kAscendingCost);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i - 1].cost_hint, tasks[i].cost_hint);
  }
  auto shuffled = tasks;
  apply_order(shuffled, TaskOrder::kRandom, 5);
  std::multiset<std::uint64_t> a, b;
  for (const auto& t : tasks) a.insert(t.id);
  for (const auto& t : shuffled) b.insert(t.id);
  EXPECT_EQ(a, b);  // permutation
}

TEST(TaskPacking, RoundTrip) {
  static_assert(pack_task(0, 0) == 0);
  static_assert(pack_task(3, 2) == 3 * kModelsPerRecordStride + 2);
  for (std::size_t record : {0u, 1u, 41u, 25134u}) {
    for (std::size_t model = 0; model < 5; ++model) {
      const PackedTask p = unpack_task(pack_task(record, model));
      EXPECT_EQ(p.record, record);
      EXPECT_EQ(p.model, model);
    }
  }
}

TEST(TaskPacking, ExhaustiveRoundTripOverStride) {
  // Every (record, model) pair in a proteome-sized range round-trips,
  // for every model slot the stride reserves -- not just the 5 shipped.
  for (std::size_t record = 0; record < 512; ++record) {
    for (std::size_t model = 0; model < kModelsPerRecordStride; ++model) {
      const std::size_t payload = pack_task(record, model);
      const PackedTask p = unpack_task(payload);
      ASSERT_EQ(p.record, record) << payload;
      ASSERT_EQ(p.model, model) << payload;
    }
  }
}

TEST(TaskPacking, MaxIndicesDoNotOverflow) {
  // The paper's largest campaign is 35,634 targets; the packing must
  // hold far beyond that, up to the size_t ceiling of the stride.
  const std::size_t max_record = std::numeric_limits<std::size_t>::max() / kModelsPerRecordStride;
  for (const std::size_t record : {std::size_t{35633}, std::size_t{1u << 20}, max_record - 1}) {
    for (const std::size_t model : {std::size_t{0}, kModelsPerRecordStride - 1}) {
      const PackedTask p = unpack_task(pack_task(record, model));
      EXPECT_EQ(p.record, record);
      EXPECT_EQ(p.model, model);
    }
  }
  // Packing stays strictly monotone in (record, model), so task ids
  // derived from payloads never collide.
  EXPECT_LT(pack_task(max_record - 1, kModelsPerRecordStride - 1),
            std::numeric_limits<std::size_t>::max());
}

TEST(TaskPacking, StrideLeavesRoomForEightModels) {
  // Adjacent records never collide, up to the stride's model capacity.
  EXPECT_EQ(unpack_task(pack_task(7, kModelsPerRecordStride - 1)).record, 7u);
  EXPECT_EQ(unpack_task(pack_task(8, 0)).record, 8u);
  EXPECT_LT(pack_task(7, kModelsPerRecordStride - 1), pack_task(8, 0));
}

TEST(SimulatedDataflow, EveryTaskRunsExactlyOnce) {
  const auto tasks = make_tasks(200);
  SimulatedDataflowParams params;
  params.workers = 16;
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  ASSERT_EQ(res.records.size(), tasks.size());
  std::set<std::uint64_t> seen;
  for (const auto& r : res.records) seen.insert(r.task_id);
  EXPECT_EQ(seen.size(), tasks.size());
}

TEST(SimulatedDataflow, NoWorkerOverlapsItself) {
  const auto tasks = make_tasks(100);
  SimulatedDataflowParams params;
  params.workers = 4;
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  // Group records by worker and check intervals are disjoint.
  for (int w = 0; w < params.workers; ++w) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& r : res.records) {
      if (r.worker == w) spans.emplace_back(r.start_s, r.end_s);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9);
    }
  }
}

TEST(SimulatedDataflow, MakespanBounds) {
  const auto tasks = make_tasks(120);
  double total = 0.0;
  double longest = 0.0;
  for (const auto& t : tasks) {
    total += t.cost_hint;
    longest = std::max(longest, t.cost_hint);
  }
  SimulatedDataflowParams params;
  params.workers = 8;
  params.dispatch_overhead_s = 0.0;
  params.startup_s = 0.0;
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  EXPECT_GE(res.makespan_s, total / 8.0 - 1e-9);  // perfect-split lower bound
  EXPECT_GE(res.makespan_s, longest);
  EXPECT_LE(res.makespan_s, total);  // never worse than serial
}

TEST(SimulatedDataflow, SortedBeatsRandomOnHeterogeneousTasks) {
  // The paper's §3.3 justification: random order can strand a long task
  // at the end; descending sort bounds the tail (Fig. 2).
  auto sorted = make_tasks(300, 11);
  auto random = sorted;
  apply_order(sorted, TaskOrder::kDescendingCost);
  apply_order(random, TaskOrder::kRandom, 1234);
  SimulatedDataflowParams params;
  params.workers = 24;
  params.startup_s = 0.0;
  auto dur = [](const TaskSpec& t) { return t.cost_hint; };
  const auto res_sorted = run_simulated_dataflow(sorted, dur, params);
  const auto res_random = run_simulated_dataflow(random, dur, params);
  EXPECT_LE(res_sorted.makespan_s, res_random.makespan_s + 1e-9);
  EXPECT_LE(res_sorted.finish_spread_s(), res_random.finish_spread_s() + 1e-9);
}

TEST(SimulatedDataflow, UtilizationAndSpreadSane) {
  auto tasks = make_tasks(400);
  apply_order(tasks, TaskOrder::kDescendingCost);
  SimulatedDataflowParams params;
  params.workers = 10;
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  EXPECT_GT(res.mean_utilization(), 0.8);
  EXPECT_LE(res.mean_utilization(), 1.0 + 1e-9);
  // All workers finish within a small fraction of the makespan.
  EXPECT_LT(res.finish_spread_s(), 0.25 * res.makespan_s);
  EXPECT_EQ(res.worker_task_count.size(), 10u);
}

TEST(SimulatedDataflow, HeterogeneousWorkerSpeeds) {
  const auto tasks = make_tasks(100);
  SimulatedDataflowParams params;
  params.workers = 2;
  params.worker_speed = {1.0, 4.0};
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  // The fast worker should complete far more tasks.
  EXPECT_GT(res.worker_task_count[1], res.worker_task_count[0] * 2);
}

TEST(SimulatedDataflow, InvalidParamsThrow) {
  SimulatedDataflowParams bad;
  bad.workers = 0;
  EXPECT_THROW(
      run_simulated_dataflow({}, [](const TaskSpec&) { return 1.0; }, bad),
      std::invalid_argument);
  SimulatedDataflowParams mismatch;
  mismatch.workers = 3;
  mismatch.worker_speed = {1.0};
  EXPECT_THROW(
      run_simulated_dataflow({}, [](const TaskSpec&) { return 1.0; }, mismatch),
      std::invalid_argument);
}

TEST(SimulatedDataflow, MoreWorkersThanTasks) {
  const auto tasks = make_tasks(3);
  SimulatedDataflowParams params;
  params.workers = 10;
  const auto res = run_simulated_dataflow(
      tasks, [](const TaskSpec& t) { return t.cost_hint; }, params);
  EXPECT_EQ(res.records.size(), 3u);
  EXPECT_EQ(res.finish_spread_s(), res.finish_spread_s());  // finite
}

TEST(ThreadedDataflow, MapReturnsResultsInOrder) {
  ThreadedDataflow flow(4);
  const auto tasks = make_tasks(60);
  const std::function<int(const TaskSpec&)> fn = [](const TaskSpec& t) {
    return static_cast<int>(t.payload) * 2;
  };
  const auto results = flow.map<int>(tasks, fn);
  ASSERT_EQ(results.size(), 60u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 2);
  }
  const auto records = flow.take_records();
  EXPECT_EQ(records.size(), 60u);
  EXPECT_TRUE(flow.take_records().empty());  // drained
}

TEST(TaskStats, CsvRoundTrip) {
  std::vector<TaskRecord> records{
      {1, "a/model1", 0, 0.0, 5.0},
      {2, "b,with,commas", 1, 1.0, 2.0},
  };
  std::ostringstream out;
  write_task_stats_csv(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_task_stats_csv(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "a/model1");
  EXPECT_EQ(parsed[1].name, "b,with,commas");
  EXPECT_DOUBLE_EQ(parsed[0].end_s, 5.0);
  EXPECT_EQ(parsed[1].worker, 1);
}

TEST(TaskStats, CsvGoldenLayout) {
  // Golden-file lock on the recorder's exact byte layout: header order,
  // row order (as recorded, not sorted), comma escaping, and default
  // float formatting (6 significant digits, scientific past 1e6). Any
  // deviation breaks downstream notebooks parsing campaign CSVs.
  const std::vector<TaskRecord> records{
      {7, "dv_00042/model3", 11, 0.0, 90.125},
      {8, "name,with,commas", 2, 1.5, 2.25},
      {9, "plain", 0, 1234567.0, 0.000125},
      {3, "out_of_order_id_kept_in_place", 1, 10.0, 20.5},
  };
  std::ostringstream out;
  write_task_stats_csv(out, records);
  const std::string golden =
      "task_id,name,worker,start_s,end_s\n"
      "7,dv_00042/model3,11,0,90.125\n"
      "8,\"name,with,commas\",2,1.5,2.25\n"
      "9,plain,0,1.23457e+06,0.000125\n"
      "3,out_of_order_id_kept_in_place,1,10,20.5\n";
  EXPECT_EQ(out.str(), golden);
}

TEST(TaskStats, TimelineRendering) {
  std::vector<TaskRecord> records{
      {1, "a", 0, 0.0, 50.0},
      {2, "b", 0, 50.0, 100.0},
      {3, "c", 1, 0.0, 100.0},
  };
  const std::string timeline = render_worker_timeline(records, {0, 1}, 100.0, 40);
  EXPECT_NE(timeline.find("worker 0"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_EQ(render_worker_timeline(records, {0}, 0.0, 40), "");
}

TEST(TaskStats, SampleWorkers) {
  std::vector<TaskRecord> records;
  for (int w = 0; w < 100; ++w) records.push_back({0, "t", w, 0.0, 1.0});
  const auto picked = sample_workers(records, 10);
  EXPECT_EQ(picked.size(), 10u);
  const auto all = sample_workers(records, 0);
  EXPECT_EQ(all.size(), 100u);
}

}  // namespace
}  // namespace sf
