#include "geom/backbone.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sf {
namespace {

TEST(Backbone, TraceHasCorrectLengthAndBonds) {
  Rng rng(5);
  const std::string ss(60, 'H');
  const auto trace = build_ca_trace(ss, rng);
  ASSERT_EQ(trace.size(), 60u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NEAR(distance(trace[i - 1], trace[i]), 3.8, 1e-6);
  }
}

TEST(Backbone, HelixGeometry) {
  Rng rng(5);
  const auto trace = build_ca_trace(std::string(40, 'H'), rng);
  // Alpha-helix CA(i)-CA(i+3) distance is ~5-6 A (vs 10+ extended).
  double mean_i3 = 0.0;
  for (std::size_t i = 0; i + 3 < trace.size(); ++i) mean_i3 += distance(trace[i], trace[i + 3]);
  mean_i3 /= static_cast<double>(trace.size() - 3);
  EXPECT_LT(mean_i3, 7.0);
  EXPECT_GT(mean_i3, 4.0);
}

TEST(Backbone, StrandIsExtended) {
  Rng rng(5);
  const auto trace = build_ca_trace(std::string(20, 'E'), rng);
  // Strand end-to-end distance grows nearly linearly.
  EXPECT_GT(distance(trace.front(), trace.back()), 0.7 * 19.0 * 3.3);
}

TEST(Backbone, DeterministicGivenRngState) {
  Rng a(9), b(9);
  const std::string ss = "HHHHHHHHCCCEEEEECCCHHHHHHH";
  const auto t1 = build_ca_trace(ss, a);
  const auto t2 = build_ca_trace(ss, b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_NEAR(distance(t1[i], t2[i]), 0.0, 1e-12);
}

TEST(Backbone, CompactGlobule) {
  Rng rng(21);
  std::string ss;
  for (int k = 0; k < 8; ++k) ss += std::string(10, 'H') + std::string(4, 'C');
  const auto trace = build_ca_trace(ss, rng);
  Vec3 c;
  for (const auto& p : trace) c += p;
  c = c / static_cast<double>(trace.size());
  double rg2 = 0.0;
  for (const auto& p : trace) rg2 += distance2(p, c);
  const double rg = std::sqrt(rg2 / static_cast<double>(trace.size()));
  // Globular scaling with generous slack (random-coil would be much larger).
  const double ideal = 2.2 * std::pow(static_cast<double>(trace.size()), 0.38);
  EXPECT_LT(rg, ideal * 2.5);
  EXPECT_GT(rg, ideal * 0.4);
}

TEST(Backbone, TinyChains) {
  Rng rng(3);
  EXPECT_TRUE(build_ca_trace("", rng).empty());
  EXPECT_EQ(build_ca_trace("H", rng).size(), 1u);
  EXPECT_EQ(build_ca_trace("HH", rng).size(), 2u);
  EXPECT_EQ(build_ca_trace("HHH", rng).size(), 3u);
}

TEST(Backbone, BuildStructurePlacesAllAtoms) {
  Rng rng(11);
  std::vector<ResidueSpec> spec;
  for (int i = 0; i < 30; ++i) {
    ResidueSpec rs;
    rs.aa = i % 2 ? 'W' : 'G';
    rs.heavy_atoms = i % 2 ? 14 : 4;
    rs.has_cb = i % 2 != 0;
    rs.has_sc = i % 2 != 0;
    spec.push_back(rs);
  }
  const Structure s = build_structure("t", spec, std::string(30, 'H'), rng);
  ASSERT_EQ(s.size(), 30u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Residue& r = s.residue(i);
    // N and C within bonding distance of CA.
    EXPECT_NEAR(distance(r.n, r.ca), 1.46, 0.01);
    EXPECT_NEAR(distance(r.c, r.ca), 1.52, 0.01);
    EXPECT_NEAR(distance(r.o, r.c), 1.23, 0.01);
    if (r.has_cb) EXPECT_NEAR(distance(r.cb, r.ca), 1.53, 0.01);
    if (r.has_sc) {
      // Bulky TRP sidechain centroid reaches ~3.9 A.
      EXPECT_NEAR(distance(r.sc, r.ca), 1.8 + 0.23 * 9, 0.01);
    }
  }
}

TEST(Backbone, SsStringShorterThanSpecIsPadded) {
  Rng rng(11);
  std::vector<ResidueSpec> spec(10);
  const Structure s = build_structure("t", spec, "HH", rng);
  EXPECT_EQ(s.size(), 10u);
}

TEST(Backbone, SsClassPredicates) {
  EXPECT_TRUE(is_helix('H'));
  EXPECT_TRUE(is_helix('G'));
  EXPECT_TRUE(is_strand('E'));
  EXPECT_FALSE(is_helix('E'));
  EXPECT_FALSE(is_strand('C'));
}

}  // namespace
}  // namespace sf
