// Report rendering and dataflow-CSV file round trips (the artifacts the
// paper's client leaves behind).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "dataflow/stats.hpp"

namespace sf {
namespace {

TEST(Report, StageLineContainsEveryField) {
  StageReport st;
  st.name = "inference";
  st.wall_s = 3725.0;
  st.node_hours = 123.4;
  st.nodes = 32;
  st.tasks = 2795;
  st.mean_utilization = 0.876;
  st.finish_spread_s = 95.0;
  std::ostringstream out;
  print_stage(out, st);
  const std::string line = out.str();
  EXPECT_NE(line.find("inference"), std::string::npos);
  EXPECT_NE(line.find("1h 02m 05s"), std::string::npos);
  EXPECT_NE(line.find("123.4"), std::string::npos);
  EXPECT_NE(line.find("2795"), std::string::npos);
  EXPECT_NE(line.find("87.6%"), std::string::npos);
}

TEST(Report, FailedTasksOnlyWhenPresent) {
  StageReport st;
  st.name = "x";
  std::ostringstream clean;
  print_stage(clean, st);
  EXPECT_EQ(clean.str().find("failed"), std::string::npos);
  st.failed_tasks = 8;
  std::ostringstream failed;
  print_stage(failed, st);
  EXPECT_NE(failed.str().find("failed 8"), std::string::npos);
}

TEST(TaskStatsFile, WriteReadRoundTripOnDisk) {
  const std::string path = ::testing::TempDir() + "/sf_task_stats.csv";
  std::vector<TaskRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back({static_cast<std::uint64_t>(i), "target" + std::to_string(i) + "/m1",
                       i % 6, i * 1.5, i * 1.5 + 42.0});
  }
  write_task_stats_csv_file(path, records);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto parsed = read_task_stats_csv(in);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].task_id, records[i].task_id);
    EXPECT_EQ(parsed[i].name, records[i].name);
    EXPECT_EQ(parsed[i].worker, records[i].worker);
    EXPECT_DOUBLE_EQ(parsed[i].start_s, records[i].start_s);
    EXPECT_DOUBLE_EQ(parsed[i].duration_s(), 42.0);
  }
}

TEST(TaskStatsFile, BadRowThrows) {
  std::istringstream in("task_id,name,worker,start_s,end_s\n1,only,three\n");
  EXPECT_THROW(read_task_stats_csv(in), std::runtime_error);
}

TEST(TaskStatsFile, UnwritablePathThrows) {
  EXPECT_THROW(write_task_stats_csv_file("/nonexistent/dir/x.csv", {}), std::runtime_error);
}

}  // namespace
}  // namespace sf
