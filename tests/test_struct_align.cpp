#include "analysis/struct_align.hpp"

#include <gtest/gtest.h>

#include "bio/fold_grammar.hpp"
#include "native/render.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

struct AlignWorld {
  Rng rng{41};
  FoldSpec fold_a = sample_fold(rng, 120);
  FoldSpec fold_b = sample_fold(rng, 120);
  std::string seq_a = sample_sequence_for_ss(render_ss(fold_a, 120), rng);
  std::string seq_b = sample_sequence_for_ss(render_ss(fold_b, 120), rng);
  Structure a = build_fold_structure("a", fold_a, seq_a);
  Structure b = build_fold_structure("b", fold_b, seq_b);
};

TEST(StructAlign, SelfAlignmentIsPerfect) {
  AlignWorld w;
  const StructAlignResult r = struct_align(w.a, w.a);
  EXPECT_GT(r.tm_query, 0.98);
  EXPECT_NEAR(r.aligned_seq_identity, 1.0, 1e-9);
  EXPECT_LT(r.rmsd, 0.2);
  EXPECT_EQ(r.pairs.size(), w.a.size());
}

TEST(StructAlign, SameFoldDifferentLengthAlignsWell) {
  AlignWorld w;
  // Same fold rendered at a different length: a genuine remote homolog.
  Rng hrng(5);
  const std::string seq2 = homolog_sequence(w.fold_a, w.seq_a, 120, 150, 0.25, hrng);
  const Structure homolog = build_fold_structure("h", w.fold_a, seq2);
  const StructAlignResult r = struct_align(w.a, homolog);
  EXPECT_GT(r.tm_query, 0.5);
  // Sequence identity over the structural alignment is low -- the §4.6
  // regime where structure search succeeds and sequence search fails.
  EXPECT_LT(r.aligned_seq_identity, 0.45);
}

TEST(StructAlign, DifferentFoldsScoreLow) {
  AlignWorld w;
  const StructAlignResult r = struct_align(w.a, w.b);
  EXPECT_LT(r.tm_query, 0.5);
}

TEST(StructAlign, SameVsDifferentFoldSeparation) {
  AlignWorld w;
  Rng hrng(9);
  const std::string seq2 = homolog_sequence(w.fold_a, w.seq_a, 120, 110, 0.3, hrng);
  const Structure same_fold = build_fold_structure("same", w.fold_a, seq2);
  const double tm_same = struct_align(w.a, same_fold).tm_query;
  const double tm_diff = struct_align(w.a, w.b).tm_query;
  EXPECT_GT(tm_same, tm_diff + 0.15);
}

TEST(StructAlign, NormalizationAsymmetry) {
  AlignWorld w;
  // Align a fragment against the full structure: tm_query (by fragment
  // length) should exceed tm_target (by full length).
  Structure fragment("frag");
  for (std::size_t i = 10; i < 70; ++i) fragment.add_residue(w.a.residue(i));
  const StructAlignResult r = struct_align(fragment, w.a);
  EXPECT_GT(r.tm_query, 0.8);
  EXPECT_LT(r.tm_target, r.tm_query);
}

TEST(StructAlign, TinyStructuresAreSafe) {
  Structure tiny("t");
  for (int i = 0; i < 3; ++i) {
    Residue r;
    r.ca = {static_cast<double>(i) * 3.8, 0, 0};
    tiny.add_residue(r);
  }
  AlignWorld w;
  const StructAlignResult r = struct_align(tiny, w.a);
  EXPECT_EQ(r.tm_query, 0.0);  // too small to align
}

TEST(StructAlign, PairsAreMonotone) {
  AlignWorld w;
  Rng hrng(13);
  const std::string seq2 = homolog_sequence(w.fold_a, w.seq_a, 120, 140, 0.4, hrng);
  const Structure homolog = build_fold_structure("h", w.fold_a, seq2);
  const StructAlignResult r = struct_align(w.a, homolog);
  for (std::size_t i = 1; i < r.pairs.size(); ++i) {
    EXPECT_GT(r.pairs[i].first, r.pairs[i - 1].first);
    EXPECT_GT(r.pairs[i].second, r.pairs[i - 1].second);
  }
}

}  // namespace
}  // namespace sf
