#include "geom/violations.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sf {
namespace {

TEST(Violations, CleanChainHasNone) {
  std::vector<Vec3> ca;
  for (int i = 0; i < 50; ++i) ca.push_back({3.8 * i, 0, 0});
  const ViolationReport rep = count_violations(ca);
  EXPECT_EQ(rep.clashes, 0u);
  EXPECT_EQ(rep.bumps, 0u);
  EXPECT_FALSE(rep.is_clashed());
}

TEST(Violations, DetectsASingleClash) {
  std::vector<Vec3> ca;
  for (int i = 0; i < 10; ++i) ca.push_back({3.8 * i, 0, 0});
  ca.push_back(ca[2] + Vec3{0.5, 0, 0});  // 0.5 A from residue 2: clash + bump
  const ViolationReport rep = count_violations(ca);
  EXPECT_GE(rep.clashes, 1u);
  EXPECT_GE(rep.bumps, rep.clashes);  // every clash is also a bump
}

TEST(Violations, BumpOnlyRange) {
  std::vector<Vec3> ca;
  for (int i = 0; i < 10; ++i) ca.push_back({3.8 * i, 0, 0});
  ca.push_back(ca[2] + Vec3{0, 2.5, 0});  // 2.5 A: bump, not clash
  const ViolationReport rep = count_violations(ca);
  EXPECT_EQ(rep.clashes, 0u);
  EXPECT_GE(rep.bumps, 1u);
}

TEST(Violations, AdjacentResiduesExcluded) {
  // Consecutive CAs at 3.5 A would be bumps if adjacency weren't excluded.
  std::vector<Vec3> ca;
  for (int i = 0; i < 20; ++i) ca.push_back({3.5 * i, 0, 0});
  const ViolationReport rep = count_violations(ca, 2);
  EXPECT_EQ(rep.bumps, 0u);
  // With min_separation 1 the same chain is full of bumps.
  EXPECT_EQ(count_violations(ca, 1).bumps, 19u);
}

TEST(Violations, ClashedModelRule) {
  ViolationReport rep;
  rep.clashes = 5;
  EXPECT_TRUE(rep.is_clashed());
  rep.clashes = 4;
  rep.bumps = 50;
  EXPECT_FALSE(rep.is_clashed());
  rep.bumps = 51;
  EXPECT_TRUE(rep.is_clashed());
}

// Property: the cell-list path agrees exactly with the quadratic path.
class ViolationsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ViolationsEquivalence, CellListMatchesQuadratic) {
  Rng rng(GetParam());
  // Random compact blob: lots of near contacts.
  std::vector<Vec3> ca;
  const int n = 300 + GetParam() * 37;  // force the cell-list path (>=256)
  for (int i = 0; i < n; ++i) {
    ca.push_back({rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)});
  }
  // Quadratic reference on the same data via a small-size call: compute
  // directly here instead.
  ViolationReport ref;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    for (std::size_t j = i + 2; j < ca.size(); ++j) {
      const double d2 = distance2(ca[i], ca[j]);
      if (d2 < kBumpDistance * kBumpDistance) {
        ++ref.bumps;
        if (d2 < kClashDistance * kClashDistance) ++ref.clashes;
      }
    }
  }
  const ViolationReport fast = count_violations(ca);
  EXPECT_EQ(fast.clashes, ref.clashes);
  EXPECT_EQ(fast.bumps, ref.bumps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationsEquivalence, ::testing::Values(1, 2, 3, 4, 5));

TEST(Violations, EmptyAndTiny) {
  EXPECT_EQ(count_violations(std::vector<Vec3>{}).bumps, 0u);
  EXPECT_EQ(count_violations(std::vector<Vec3>{{0, 0, 0}}).bumps, 0u);
}

}  // namespace
}  // namespace sf
