#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"

namespace sf {
namespace {

struct PipelineWorld {
  FoldUniverse universe{40, 31};
  SpeciesProfile profile = species_d_vulgaris();
  std::vector<ProteinRecord> records;

  PipelineWorld() {
    records = ProteomeGenerator(universe, profile, 12).generate(80);
  }

  PipelineConfig small_config() const {
    PipelineConfig cfg;
    cfg.summit_nodes = 4;
    cfg.andes_nodes = 8;
    cfg.relax_nodes = 1;
    cfg.db_replicas = 4;
    cfg.jobs_per_replica = 2;
    cfg.quality_sample = 30;
    cfg.relax_sample = 10;
    return cfg;
  }
};

TEST(Pipeline, ProducesAllStageReports) {
  PipelineWorld w;
  Pipeline pipeline(w.universe, w.small_config());
  const CampaignReport rep = pipeline.run(w.records);

  EXPECT_EQ(rep.features.tasks, 80);
  EXPECT_EQ(rep.inference.tasks, 80 * 5);
  EXPECT_GT(rep.relaxation.tasks, 0);

  EXPECT_GT(rep.features.wall_s, 0.0);
  EXPECT_GT(rep.inference.wall_s, 0.0);
  EXPECT_GT(rep.relaxation.wall_s, 0.0);
  EXPECT_GT(rep.features.node_hours, 0.0);
  EXPECT_GT(rep.total_summit_node_hours(), 0.0);
  EXPECT_GT(rep.total_andes_node_hours(), 0.0);

  EXPECT_EQ(rep.targets.size(), 80u);
  EXPECT_EQ(rep.plddt.count(), 30u);  // quality sample size
  EXPECT_EQ(rep.inference_records.size(), 400u);
}

TEST(Pipeline, QualityValuesAreInRange) {
  PipelineWorld w;
  Pipeline pipeline(w.universe, w.small_config());
  const CampaignReport rep = pipeline.run(w.records);
  for (const auto& t : rep.targets) {
    EXPECT_FALSE(t.id.empty());
    if (!t.measured) continue;
    EXPECT_GE(t.plddt, 0.0);
    EXPECT_LE(t.plddt, 100.0);
    EXPECT_GE(t.ptms, 0.0);
    EXPECT_LE(t.ptms, 1.0);
    EXPECT_GE(t.top_model, 1);
    EXPECT_LE(t.top_model, 5);
  }
}

TEST(Pipeline, RelaxationRemovesClashesOnMeasuredSubset) {
  PipelineWorld w;
  Pipeline pipeline(w.universe, w.small_config());
  const CampaignReport rep = pipeline.run(w.records);
  int relaxed = 0;
  for (const auto& t : rep.targets) {
    if (!t.relaxed) continue;
    ++relaxed;
    EXPECT_EQ(t.clashes_after, 0u);
    EXPECT_LE(t.bumps_after, t.bumps_before);
  }
  EXPECT_EQ(relaxed, 10);  // relax_sample
}

TEST(Pipeline, DeterministicAcrossRuns) {
  PipelineWorld w;
  Pipeline p1(w.universe, w.small_config());
  Pipeline p2(w.universe, w.small_config());
  const CampaignReport a = p1.run(w.records);
  const CampaignReport b = p2.run(w.records);
  EXPECT_DOUBLE_EQ(a.inference.wall_s, b.inference.wall_s);
  EXPECT_DOUBLE_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_DOUBLE_EQ(a.features.node_hours, b.features.node_hours);
}

TEST(Pipeline, MoreNodesShortenInferenceWall) {
  PipelineWorld w;
  PipelineConfig small = w.small_config();
  PipelineConfig big = small;
  big.summit_nodes = 16;
  const CampaignReport rep_small = Pipeline(w.universe, small).run(w.records);
  const CampaignReport rep_big = Pipeline(w.universe, big).run(w.records);
  EXPECT_LT(rep_big.inference.wall_s, rep_small.inference.wall_s);
  // Same work, so node-hours are similar (within startup overheads).
  EXPECT_NEAR(rep_big.inference.node_hours, rep_small.inference.node_hours,
              0.6 * rep_small.inference.node_hours);
}

TEST(Pipeline, FullLibraryCostsMoreFeatureTime) {
  PipelineWorld w;
  PipelineConfig reduced = w.small_config();
  PipelineConfig full = reduced;
  full.library = LibraryKind::kFull;
  const CampaignReport rep_red = Pipeline(w.universe, reduced).run(w.records);
  const CampaignReport rep_full = Pipeline(w.universe, full).run(w.records);
  EXPECT_GT(rep_full.features.node_hours, 2.0 * rep_red.features.node_hours);
}

TEST(Pipeline, ReportPrinterProducesOutput) {
  PipelineWorld w;
  const CampaignReport rep = Pipeline(w.universe, w.small_config()).run(w.records);
  std::ostringstream out;
  print_campaign(out, rep, w.profile);
  const std::string text = out.str();
  EXPECT_NE(text.find("campaign"), std::string::npos);
  EXPECT_NE(text.find("pLDDT"), std::string::npos);
  EXPECT_NE(text.find("node-hours"), std::string::npos);
}

TEST(Pipeline, MeasuredSubsetFeedsUnmeasuredDurations) {
  // With quality_sample < n, unmeasured targets still get recycle counts.
  PipelineWorld w;
  PipelineConfig cfg = w.small_config();
  cfg.quality_sample = 10;
  const CampaignReport rep = Pipeline(w.universe, cfg).run(w.records);
  int measured = 0, unmeasured_with_recycles = 0;
  for (const auto& t : rep.targets) {
    if (t.measured) ++measured;
    else if (t.recycles > 0) ++unmeasured_with_recycles;
  }
  EXPECT_EQ(measured, 10);
  EXPECT_GT(unmeasured_with_recycles, 0);
}

}  // namespace
}  // namespace sf
