#include "fold/complex.hpp"

#include <gtest/gtest.h>

#include "bio/species.hpp"
#include "fold/memory_model.hpp"
#include "util/stats.hpp"

namespace sf {
namespace {

struct ComplexWorld {
  FoldUniverse universe{40, 71};
  std::vector<ProteinRecord> records;
  ComplexWorld() {
    SpeciesProfile profile = species_d_vulgaris();
    profile.length_max = 300;  // keep combined lengths inside memory
    records = ProteomeGenerator(universe, profile, 5).generate(16);
  }
};

TEST(Interactome, SymmetricAndDeterministic) {
  ComplexWorld w;
  const Interactome net(w.records, 0.08, 11);
  for (std::size_t i = 0; i < w.records.size(); ++i) {
    EXPECT_FALSE(net.interacts(i, i));
    for (std::size_t j = 0; j < w.records.size(); ++j) {
      EXPECT_EQ(net.interacts(i, j), net.interacts(j, i));
    }
  }
  const Interactome net2(w.records, 0.08, 11);
  EXPECT_EQ(net.pairs(), net2.pairs());
}

TEST(Interactome, BaseRateControlsDensity) {
  ComplexWorld w;
  const Interactome sparse(w.records, 0.02, 3);
  const Interactome dense(w.records, 0.4, 3);
  EXPECT_LT(sparse.pairs().size(), dense.pairs().size());
}

TEST(Interactome, ParalogEnrichment) {
  // Same-fold pairs interact more often than cross-fold pairs at equal
  // base rate.
  FoldUniverse universe(4, 71);  // few folds -> many paralog pairs
  SpeciesProfile profile = species_d_vulgaris();
  profile.length_max = 250;
  const auto records = ProteomeGenerator(universe, profile, 5).generate(60);
  const Interactome net(records, 0.05, 7);
  int same_pairs = 0, same_hits = 0, diff_pairs = 0, diff_hits = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const bool same = records[i].fold_index == records[j].fold_index;
      (same ? same_pairs : diff_pairs)++;
      if (net.interacts(i, j)) (same ? same_hits : diff_hits)++;
    }
  }
  ASSERT_GT(same_pairs, 20);
  ASSERT_GT(diff_pairs, 20);
  EXPECT_GT(static_cast<double>(same_hits) / same_pairs,
            2.0 * static_cast<double>(diff_hits) / std::max(1, diff_pairs));
}

TEST(ComplexEngine, PredictionShape) {
  ComplexWorld w;
  const ComplexEngine engine(w.universe);
  const Interactome net(w.records, 0.1, 11);
  const auto pred = engine.predict_pair(w.records[0], w.records[1], net, 0, 1, preset_genome());
  if (!pred.out_of_memory) {
    EXPECT_EQ(pred.structure.size(),
              w.records[0].sequence.length() + w.records[1].sequence.length());
    EXPECT_EQ(pred.chain_a_length, w.records[0].sequence.length());
    EXPECT_GE(pred.interface_score, 0.0);
    EXPECT_LE(pred.interface_score, 1.0);
  }
}

TEST(ComplexEngine, InterfaceScoreSeparatesBindersFromNonBinders) {
  ComplexWorld w;
  const ComplexEngine engine(w.universe);
  const Interactome net(w.records, 0.25, 11);
  SampleSet binder_scores, nonbinder_scores;
  for (std::size_t i = 0; i < w.records.size(); ++i) {
    for (std::size_t j = i + 1; j < w.records.size() && binder_scores.count() < 8; ++j) {
      const auto pred =
          engine.predict_pair(w.records[i], w.records[j], net, i, j, preset_reduced_db());
      if (pred.out_of_memory) continue;
      (pred.truly_interacting ? binder_scores : nonbinder_scores).add(pred.interface_score);
    }
  }
  ASSERT_GE(binder_scores.count(), 3u);
  ASSERT_GE(nonbinder_scores.count(), 3u);
  EXPECT_GT(binder_scores.mean(), nonbinder_scores.mean() + 0.15);
}

TEST(ComplexEngine, CombinedLengthDrivesOom) {
  FoldUniverse universe(10, 3);
  SpeciesProfile profile = species_d_vulgaris();
  profile.length_min = 1100;
  profile.length_log_mu = 7.1;
  profile.length_max = 1400;
  const auto big = ProteomeGenerator(universe, profile, 1).generate(2);
  // Each monomer fits a standard node; the pair does not.
  ASSERT_TRUE(fits_standard_node(big[0].length(), 1));
  ASSERT_FALSE(fits_standard_node(big[0].length() + big[1].length(), 1));
  const ComplexEngine engine(universe);
  const Interactome net(big, 0.5, 1);
  const auto pred = engine.predict_pair(big[0], big[1], net, 0, 1, preset_genome());
  EXPECT_TRUE(pred.out_of_memory);
}

TEST(ComplexScreen, QuadraticTaskCount) {
  EXPECT_EQ(complex_screen_tasks(2), 1u);
  EXPECT_EQ(complex_screen_tasks(100), 4950u);
  // §5: "quadratic (or higher) order dependence".
  EXPECT_GT(complex_screen_tasks(2000) / complex_screen_tasks(1000), 3u);
}

TEST(ComplexEngine, Deterministic) {
  ComplexWorld w;
  const ComplexEngine engine(w.universe);
  const Interactome net(w.records, 0.1, 11);
  const auto p1 = engine.predict_pair(w.records[2], w.records[3], net, 2, 3, preset_genome());
  const auto p2 = engine.predict_pair(w.records[2], w.records[3], net, 2, 3, preset_genome());
  EXPECT_DOUBLE_EQ(p1.interface_score, p2.interface_score);
  EXPECT_DOUBLE_EQ(p1.ptms, p2.ptms);
}

}  // namespace
}  // namespace sf
