// Unified Executor interface: backend parity between the threaded and
// simulated dataflows, and the declarative RetryPolicy (exhaust-retries
// and reroute-to-alternate-pool paths).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "dataflow/executor.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<TaskSpec> make_tasks(int n, std::uint64_t cost_seed = 3) {
  Rng rng(cost_seed);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "task" + std::to_string(i);
    t.cost_hint = rng.lognormal(1.0, 0.5);
    t.payload = static_cast<std::size_t>(i);
    tasks.push_back(t);
  }
  return tasks;
}

// Runs a pure computation through `exec` and returns the per-payload
// results (submission order, independent of completion order).
std::vector<int> run_compute(Executor& exec, const std::vector<TaskSpec>& tasks,
                             MapResult* out_run = nullptr) {
  std::vector<int> results(tasks.size(), -1);
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    results[t.payload] = static_cast<int>(t.payload) * 3 + 1;
    TaskOutcome o;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  const MapResult run = exec.map(tasks, fn);
  if (out_run) *out_run = run;
  return results;
}

void check_record_invariants(const std::vector<TaskRecord>& records, std::size_t expected) {
  ASSERT_EQ(records.size(), expected);
  std::set<std::uint64_t> seen;
  for (const auto& r : records) {
    EXPECT_LE(r.start_s, r.end_s) << r.name;
    EXPECT_GE(r.start_s, 0.0) << r.name;
    seen.insert(r.task_id);
  }
  EXPECT_EQ(seen.size(), expected);  // one record per task
}

TEST(Executor, BackendParity) {
  auto tasks = make_tasks(64);
  apply_order(tasks, TaskOrder::kDescendingCost);

  SimulatedDataflowParams params;
  params.workers = 6;
  SimulatedExecutor sim{params};
  ThreadedExecutor threaded(6);
  EXPECT_EQ(sim.workers(), threaded.workers());

  MapResult sim_run, thr_run;
  const auto sim_results = run_compute(sim, tasks, &sim_run);
  const auto thr_results = run_compute(threaded, tasks, &thr_run);

  // Same result ordering on both backends: results land at their
  // payload slot regardless of completion order.
  EXPECT_EQ(sim_results, thr_results);
  for (std::size_t i = 0; i < sim_results.size(); ++i) {
    EXPECT_EQ(sim_results[i], static_cast<int>(i) * 3 + 1);
  }

  // TaskRecord invariants hold on both backends.
  check_record_invariants(sim_run.primary.records, tasks.size());
  check_record_invariants(thr_run.primary.records, tasks.size());
  EXPECT_EQ(sim_run.failed_tasks, 0);
  EXPECT_EQ(thr_run.failed_tasks, 0);
  EXPECT_TRUE(sim_run.retries.empty());
  EXPECT_TRUE(thr_run.retries.empty());
  EXPECT_GT(sim_run.wall_s(), 0.0);
  EXPECT_GT(thr_run.wall_s(), 0.0);
}

TEST(Executor, RetryExhaustsToFailed) {
  const auto tasks = make_tasks(20);
  SimulatedDataflowParams params;
  params.workers = 4;
  SimulatedExecutor exec{params};

  std::map<std::uint64_t, int> attempts;
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    ++attempts[t.id];
    EXPECT_FALSE(at.alt_pool);  // no alternate pool configured
    TaskOutcome o;
    o.ok = t.id % 2 == 0;  // odd ids never succeed
    o.sim_duration_s = 1.0;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 10);
  EXPECT_EQ(run.rerouted_tasks, 0);
  ASSERT_EQ(run.retries.size(), 2u);
  EXPECT_FALSE(run.retries[0].alt_pool);
  EXPECT_EQ(run.retries[0].tasks, 10);
  EXPECT_EQ(run.retries[1].tasks, 10);
  for (const auto& [id, count] : attempts) {
    EXPECT_EQ(count, id % 2 == 0 ? 1 : 3) << "task " << id;
  }
  // Same-pool retries extend the primary pool's busy span.
  EXPECT_GT(run.primary_pool_s(), run.primary.makespan_s);
  EXPECT_EQ(run.alt_pool_s(), 0.0);
}

TEST(Executor, RetryReroutesToAltPool) {
  const auto tasks = make_tasks(30);
  SimulatedDataflowParams params;
  params.workers = 5;
  SimulatedDataflowParams alt = params;
  alt.workers = 2;
  SimulatedExecutor exec{params, alt};
  EXPECT_EQ(exec.alt_workers(), 2);

  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    // A third of the tasks OOM on the standard pool but always succeed
    // on the alternate (high-memory) pool.
    o.ok = at.alt_pool || t.id % 3 != 0;
    o.sim_duration_s = at.alt_pool ? 4.0 : 1.0;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_EQ(run.rerouted_tasks, 10);
  ASSERT_EQ(run.retries.size(), 1u);
  EXPECT_TRUE(run.retries[0].alt_pool);
  check_record_invariants(run.retries[0].run.records, 10);
  // The alternate pool billed its own span; the stage wall covers both
  // concurrent pools.
  EXPECT_GT(run.alt_pool_s(), 0.0);
  EXPECT_DOUBLE_EQ(run.primary_pool_s(), run.primary.makespan_s);
  EXPECT_DOUBLE_EQ(run.wall_s(), std::max(run.primary_pool_s(), run.alt_pool_s()));
}

TEST(Executor, RetryCostScaleInflatesRetryDurations) {
  const auto tasks = make_tasks(4);
  SimulatedDataflowParams params;
  params.workers = 4;
  params.dispatch_overhead_s = 0.0;
  params.startup_s = 0.0;
  SimulatedExecutor exec{params};

  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    o.ok = at.attempt >= 1;
    o.sim_duration_s = static_cast<double>(t.id + 1);
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.retry_cost_scale = 2.0;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  ASSERT_EQ(run.retries.size(), 1u);
  // Every retried task ran at twice its base duration.
  for (const auto& r : run.retries[0].run.records) {
    EXPECT_DOUBLE_EQ(r.duration_s(), 2.0 * static_cast<double>(r.task_id + 1));
  }
}

TEST(Executor, ThreadedRerouteRunsOnAltPool) {
  const auto tasks = make_tasks(12);
  ThreadedExecutor exec(4, 2);

  std::atomic<int> alt_attempts{0};
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    if (at.alt_pool) ++alt_attempts;
    TaskOutcome o;
    o.ok = at.alt_pool || t.id >= 6;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_EQ(run.rerouted_tasks, 6);
  EXPECT_EQ(alt_attempts.load(), 6);
  ASSERT_EQ(run.retries.size(), 1u);
  check_record_invariants(run.retries[0].run.records, 6);
}

TEST(Executor, BackoffExtendsPoolSpansAndIsAccounted) {
  const auto tasks = make_tasks(6);
  SimulatedDataflowParams params;
  params.workers = 3;
  params.dispatch_overhead_s = 0.0;
  params.startup_s = 0.0;
  SimulatedDataflowParams alt = params;
  alt.workers = 2;
  SimulatedExecutor exec{params, alt};

  // Tasks fail their first two attempts, succeed on the third.
  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    o.ok = at.attempt >= 2;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_s = 8.0;
  policy.backoff_growth = 3.0;
  const MapResult run = exec.map(tasks, fn, policy);

  ASSERT_EQ(run.retries.size(), 2u);
  // Exponential schedule: 8s before round 1, 24s before round 2.
  EXPECT_DOUBLE_EQ(run.retries[0].backoff_s, 8.0);
  EXPECT_DOUBLE_EQ(run.retries[1].backoff_s, 24.0);
  EXPECT_DOUBLE_EQ(run.faults.backoff_delay_s, 32.0);
  // Same-pool retries serialize after the primary round, backoff
  // included in the busy span.
  double expected = run.primary.makespan_s;
  for (const auto& r : run.retries) expected += r.backoff_s + r.run.makespan_s;
  EXPECT_DOUBLE_EQ(run.primary_pool_s(), expected);
  EXPECT_EQ(run.alt_pool_s(), 0.0);
  EXPECT_DOUBLE_EQ(run.wall_s(), run.primary_pool_s());
}

TEST(Executor, PoolSpansWhenRetryRoundsLandOnBothPools) {
  // Rerouted retries move to the alternate pool: primary_pool_s() must
  // stop at the first round's makespan while alt_pool_s() carries the
  // retry rounds (and their backoff), and the wall is their max.
  const auto tasks = make_tasks(10);
  SimulatedDataflowParams params;
  params.workers = 4;
  SimulatedDataflowParams alt = params;
  alt.workers = 1;
  SimulatedExecutor exec{params, alt};

  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    o.ok = at.alt_pool || t.id % 2 == 0;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  policy.backoff_base_s = 5.0;
  const MapResult run = exec.map(tasks, fn, policy);

  ASSERT_EQ(run.retries.size(), 1u);
  EXPECT_TRUE(run.retries[0].alt_pool);
  EXPECT_DOUBLE_EQ(run.primary_pool_s(), run.primary.makespan_s);
  EXPECT_DOUBLE_EQ(run.alt_pool_s(), 5.0 + run.retries[0].run.makespan_s);
  EXPECT_DOUBLE_EQ(run.wall_s(), std::max(run.primary_pool_s(), run.alt_pool_s()));
  EXPECT_DOUBLE_EQ(run.faults.backoff_delay_s, 5.0);
}

// Deterministic intrinsic-failure pattern: task `id` fails its first
// (id % modulus) attempts, everywhere.
TaskFn flaky_fn(int modulus, std::map<std::uint64_t, int>* attempts, std::mutex* mu) {
  return [modulus, attempts, mu](const TaskSpec& t, const TaskAttempt& at) {
    {
      const std::lock_guard<std::mutex> lock(*mu);
      ++(*attempts)[t.id];
    }
    TaskOutcome o;
    o.ok = at.attempt >= static_cast<int>(t.id) % modulus;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
}

TEST(Executor, PolicyGridBackendParityProperty) {
  // Property sweep: randomized task sets crossed with a RetryPolicy
  // grid, through both backends. Attempt counts, failed counts, reroute
  // accounting, and round structure must agree pairwise on every case.
  Rng rng(0xBACDU);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 48));
    auto tasks = make_tasks(n, rng.next_u64());
    apply_order(tasks, TaskOrder::kDescendingCost);
    for (const int max_attempts : {1, 2, 4}) {
      for (const bool reroute : {false, true}) {
        RetryPolicy policy;
        policy.max_attempts = max_attempts;
        policy.reroute_to_alt_pool = reroute;
        policy.retry_order = TaskOrder::kDescendingCost;
        const int modulus = static_cast<int>(rng.uniform_int(2, 5));

        SimulatedDataflowParams params;
        params.workers = static_cast<int>(rng.uniform_int(1, 8));
        SimulatedDataflowParams alt_params = params;
        alt_params.workers = reroute ? 2 : 0;
        SimulatedExecutor sim{params, alt_params};
        ThreadedExecutor threaded(3, reroute ? 2 : 0);

        std::mutex mu;
        std::map<std::uint64_t, int> sim_attempts, thr_attempts;
        const MapResult sim_run = sim.map(tasks, flaky_fn(modulus, &sim_attempts, &mu), policy);
        const MapResult thr_run =
            threaded.map(tasks, flaky_fn(modulus, &thr_attempts, &mu), policy);

        SCOPED_TRACE("trial " + std::to_string(trial) + " attempts " +
                     std::to_string(max_attempts) + " reroute " + std::to_string(reroute) +
                     " modulus " + std::to_string(modulus));
        EXPECT_EQ(sim_attempts, thr_attempts);
        EXPECT_EQ(sim_run.failed_tasks, thr_run.failed_tasks);
        EXPECT_EQ(sim_run.retry_attempts, thr_run.retry_attempts);
        EXPECT_EQ(sim_run.rerouted_tasks, thr_run.rerouted_tasks);
        EXPECT_EQ(sim_run.faults.intrinsic_failures, thr_run.faults.intrinsic_failures);
        ASSERT_EQ(sim_run.retries.size(), thr_run.retries.size());
        for (std::size_t r = 0; r < sim_run.retries.size(); ++r) {
          EXPECT_EQ(sim_run.retries[r].tasks, thr_run.retries[r].tasks);
          EXPECT_EQ(sim_run.retries[r].alt_pool, thr_run.retries[r].alt_pool);
        }
        // Oracle: task id fails its first id%modulus attempts, so its
        // attempt count is min(id%modulus + 1, max_attempts).
        for (const auto& [id, count] : sim_attempts) {
          const int fails = static_cast<int>(id) % modulus;
          EXPECT_EQ(count, std::min(fails + 1, max_attempts)) << "task " << id;
        }
      }
    }
  }
}

TEST(Executor, RetryRequeueFollowsCanonicalOrderThenPolicy) {
  // Failed tasks are re-queued in task-id order and the policy's
  // ordering applied, so a descending-cost stage retries long tasks
  // first -- the invariant the high-memory rerun relies on.
  auto tasks = make_tasks(16, 7);
  apply_order(tasks, TaskOrder::kDescendingCost);
  SimulatedDataflowParams params;
  params.workers = 2;
  SimulatedDataflowParams alt = params;
  alt.workers = 1;
  SimulatedExecutor exec{params, alt};

  std::vector<std::uint64_t> retry_dispatch;
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    if (at.attempt > 0) retry_dispatch.push_back(t.id);
    TaskOutcome o;
    o.ok = at.alt_pool;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  policy.retry_order = TaskOrder::kDescendingCost;
  exec.map(tasks, fn, policy);

  ASSERT_EQ(retry_dispatch.size(), tasks.size());
  std::map<std::uint64_t, double> cost_by_id;
  for (const auto& t : tasks) cost_by_id[t.id] = t.cost_hint;
  for (std::size_t i = 1; i < retry_dispatch.size(); ++i) {
    EXPECT_GE(cost_by_id[retry_dispatch[i - 1]], cost_by_id[retry_dispatch[i]]);
  }
}

}  // namespace
}  // namespace sf
