// Unified Executor interface: backend parity between the threaded and
// simulated dataflows, and the declarative RetryPolicy (exhaust-retries
// and reroute-to-alternate-pool paths).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "dataflow/executor.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<TaskSpec> make_tasks(int n, std::uint64_t cost_seed = 3) {
  Rng rng(cost_seed);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "task" + std::to_string(i);
    t.cost_hint = rng.lognormal(1.0, 0.5);
    t.payload = static_cast<std::size_t>(i);
    tasks.push_back(t);
  }
  return tasks;
}

// Runs a pure computation through `exec` and returns the per-payload
// results (submission order, independent of completion order).
std::vector<int> run_compute(Executor& exec, const std::vector<TaskSpec>& tasks,
                             MapResult* out_run = nullptr) {
  std::vector<int> results(tasks.size(), -1);
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    results[t.payload] = static_cast<int>(t.payload) * 3 + 1;
    TaskOutcome o;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  const MapResult run = exec.map(tasks, fn);
  if (out_run) *out_run = run;
  return results;
}

void check_record_invariants(const std::vector<TaskRecord>& records, std::size_t expected) {
  ASSERT_EQ(records.size(), expected);
  std::set<std::uint64_t> seen;
  for (const auto& r : records) {
    EXPECT_LE(r.start_s, r.end_s) << r.name;
    EXPECT_GE(r.start_s, 0.0) << r.name;
    seen.insert(r.task_id);
  }
  EXPECT_EQ(seen.size(), expected);  // one record per task
}

TEST(Executor, BackendParity) {
  auto tasks = make_tasks(64);
  apply_order(tasks, TaskOrder::kDescendingCost);

  SimulatedDataflowParams params;
  params.workers = 6;
  SimulatedExecutor sim{params};
  ThreadedExecutor threaded(6);
  EXPECT_EQ(sim.workers(), threaded.workers());

  MapResult sim_run, thr_run;
  const auto sim_results = run_compute(sim, tasks, &sim_run);
  const auto thr_results = run_compute(threaded, tasks, &thr_run);

  // Same result ordering on both backends: results land at their
  // payload slot regardless of completion order.
  EXPECT_EQ(sim_results, thr_results);
  for (std::size_t i = 0; i < sim_results.size(); ++i) {
    EXPECT_EQ(sim_results[i], static_cast<int>(i) * 3 + 1);
  }

  // TaskRecord invariants hold on both backends.
  check_record_invariants(sim_run.primary.records, tasks.size());
  check_record_invariants(thr_run.primary.records, tasks.size());
  EXPECT_EQ(sim_run.failed_tasks, 0);
  EXPECT_EQ(thr_run.failed_tasks, 0);
  EXPECT_TRUE(sim_run.retries.empty());
  EXPECT_TRUE(thr_run.retries.empty());
  EXPECT_GT(sim_run.wall_s(), 0.0);
  EXPECT_GT(thr_run.wall_s(), 0.0);
}

TEST(Executor, RetryExhaustsToFailed) {
  const auto tasks = make_tasks(20);
  SimulatedDataflowParams params;
  params.workers = 4;
  SimulatedExecutor exec{params};

  std::map<std::uint64_t, int> attempts;
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    ++attempts[t.id];
    EXPECT_FALSE(at.alt_pool);  // no alternate pool configured
    TaskOutcome o;
    o.ok = t.id % 2 == 0;  // odd ids never succeed
    o.sim_duration_s = 1.0;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 10);
  EXPECT_EQ(run.rerouted_tasks, 0);
  ASSERT_EQ(run.retries.size(), 2u);
  EXPECT_FALSE(run.retries[0].alt_pool);
  EXPECT_EQ(run.retries[0].tasks, 10);
  EXPECT_EQ(run.retries[1].tasks, 10);
  for (const auto& [id, count] : attempts) {
    EXPECT_EQ(count, id % 2 == 0 ? 1 : 3) << "task " << id;
  }
  // Same-pool retries extend the primary pool's busy span.
  EXPECT_GT(run.primary_pool_s(), run.primary.makespan_s);
  EXPECT_EQ(run.alt_pool_s(), 0.0);
}

TEST(Executor, RetryReroutesToAltPool) {
  const auto tasks = make_tasks(30);
  SimulatedDataflowParams params;
  params.workers = 5;
  SimulatedDataflowParams alt = params;
  alt.workers = 2;
  SimulatedExecutor exec{params, alt};
  EXPECT_EQ(exec.alt_workers(), 2);

  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    // A third of the tasks OOM on the standard pool but always succeed
    // on the alternate (high-memory) pool.
    o.ok = at.alt_pool || t.id % 3 != 0;
    o.sim_duration_s = at.alt_pool ? 4.0 : 1.0;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_EQ(run.rerouted_tasks, 10);
  ASSERT_EQ(run.retries.size(), 1u);
  EXPECT_TRUE(run.retries[0].alt_pool);
  check_record_invariants(run.retries[0].run.records, 10);
  // The alternate pool billed its own span; the stage wall covers both
  // concurrent pools.
  EXPECT_GT(run.alt_pool_s(), 0.0);
  EXPECT_DOUBLE_EQ(run.primary_pool_s(), run.primary.makespan_s);
  EXPECT_DOUBLE_EQ(run.wall_s(), std::max(run.primary_pool_s(), run.alt_pool_s()));
}

TEST(Executor, RetryCostScaleInflatesRetryDurations) {
  const auto tasks = make_tasks(4);
  SimulatedDataflowParams params;
  params.workers = 4;
  params.dispatch_overhead_s = 0.0;
  params.startup_s = 0.0;
  SimulatedExecutor exec{params};

  const TaskFn fn = [](const TaskSpec& t, const TaskAttempt& at) {
    TaskOutcome o;
    o.ok = at.attempt >= 1;
    o.sim_duration_s = static_cast<double>(t.id + 1);
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.retry_cost_scale = 2.0;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  ASSERT_EQ(run.retries.size(), 1u);
  // Every retried task ran at twice its base duration.
  for (const auto& r : run.retries[0].run.records) {
    EXPECT_DOUBLE_EQ(r.duration_s(), 2.0 * static_cast<double>(r.task_id + 1));
  }
}

TEST(Executor, ThreadedRerouteRunsOnAltPool) {
  const auto tasks = make_tasks(12);
  ThreadedExecutor exec(4, 2);

  std::atomic<int> alt_attempts{0};
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    if (at.alt_pool) ++alt_attempts;
    TaskOutcome o;
    o.ok = at.alt_pool || t.id >= 6;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  const MapResult run = exec.map(tasks, fn, policy);

  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_EQ(run.rerouted_tasks, 6);
  EXPECT_EQ(alt_attempts.load(), 6);
  ASSERT_EQ(run.retries.size(), 1u);
  check_record_invariants(run.retries[0].run.records, 6);
}

TEST(Executor, RetryRequeueFollowsCanonicalOrderThenPolicy) {
  // Failed tasks are re-queued in task-id order and the policy's
  // ordering applied, so a descending-cost stage retries long tasks
  // first -- the invariant the high-memory rerun relies on.
  auto tasks = make_tasks(16, 7);
  apply_order(tasks, TaskOrder::kDescendingCost);
  SimulatedDataflowParams params;
  params.workers = 2;
  SimulatedDataflowParams alt = params;
  alt.workers = 1;
  SimulatedExecutor exec{params, alt};

  std::vector<std::uint64_t> retry_dispatch;
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt& at) {
    if (at.attempt > 0) retry_dispatch.push_back(t.id);
    TaskOutcome o;
    o.ok = at.alt_pool;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.reroute_to_alt_pool = true;
  policy.retry_order = TaskOrder::kDescendingCost;
  exec.map(tasks, fn, policy);

  ASSERT_EQ(retry_dispatch.size(), tasks.size());
  std::map<std::uint64_t, double> cost_by_id;
  for (const auto& t : tasks) cost_by_id[t.id] = t.cost_hint;
  for (std::size_t i = 1; i < retry_dispatch.size(); ++i) {
    EXPECT_GE(cost_by_id[retry_dispatch[i - 1]], cost_by_id[retry_dispatch[i]]);
  }
}

}  // namespace
}  // namespace sf
