// The arrival stream is part of a campaign's reproducible identity:
// regenerating it must yield the same bytes, regardless of how much
// concurrency the consumer later uses (the generator never sees worker
// counts at all -- these tests pin that property down).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "sim/arrivals.hpp"

namespace sf {
namespace {

ArrivalProcessParams three_tenant_params() {
  ArrivalProcessParams p;
  p.requests = 200;
  p.mean_interarrival_s = 45.0;
  p.seed = 17;
  p.tenants = {
      {"genomics", 3.0, 0.5, 4},
      {"screening", 1.0, 0.0, 0},
      {"refolding", 2.0, 0.25, 2},
  };
  return p;
}

TEST(Arrivals, RegenerationIsByteIdentical) {
  const auto params = three_tenant_params();
  const auto a = generate_arrivals(params, 64);
  const auto b = generate_arrivals(params, 64);
  EXPECT_EQ(format_arrivals(a), format_arrivals(b));
  EXPECT_EQ(arrivals_fingerprint(a), arrivals_fingerprint(b));
}

TEST(Arrivals, ByteIdenticalAcrossConcurrentGeneration) {
  // Generate the same stream from several threads at once; every copy
  // must match the serial reference byte for byte.
  const auto params = three_tenant_params();
  const std::string reference = format_arrivals(generate_arrivals(params, 64));
  std::vector<std::string> results(8);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (auto& slot : results) {
    threads.emplace_back(
        [&params, &slot] { slot = format_arrivals(generate_arrivals(params, 64)); });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

TEST(Arrivals, TimesAreMonotoneAndTenantsWeighted) {
  const auto params = three_tenant_params();
  const auto events = generate_arrivals(params, 64);
  ASSERT_EQ(events.size(), 200u);
  std::vector<int> per_tenant(3, 0);
  double prev = 0.0;
  for (const auto& ev : events) {
    EXPECT_GE(ev.time_s, prev);
    prev = ev.time_s;
    ASSERT_LT(ev.tenant, 3u);
    ASSERT_LT(ev.record, 64u);
    // Tenant slices never overlap: record % 3 identifies the owner.
    EXPECT_EQ(ev.record % 3, ev.tenant);
    ++per_tenant[ev.tenant];
  }
  // 3:1:2 weights; the heavy tenant must dominate the light one.
  EXPECT_GT(per_tenant[0], per_tenant[1]);
  EXPECT_GT(per_tenant[2], per_tenant[1]);
}

TEST(Arrivals, HotSetConcentratesRepeats) {
  ArrivalProcessParams p;
  p.requests = 400;
  p.mean_interarrival_s = 10.0;
  p.seed = 5;
  p.tenants = {{"hot", 1.0, 0.9, 2}};
  const auto events = generate_arrivals(p, 60);
  std::set<std::size_t> distinct;
  for (const auto& ev : events) distinct.insert(ev.record);
  // 400 draws at 90% hot traffic over a 2-record hot set touch far fewer
  // distinct records than the 60-record subset.
  EXPECT_LT(distinct.size(), 30u);
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Arrivals, DegenerateStreamIsTheBatch) {
  const auto events = degenerate_arrivals(5);
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t r = 0; r < events.size(); ++r) {
    EXPECT_EQ(events[r].time_s, 0.0);
    EXPECT_EQ(events[r].record, r);
    EXPECT_EQ(events[r].tenant, 0u);
    EXPECT_EQ(events[r].request_id, static_cast<int>(r));
  }
}

TEST(Arrivals, FingerprintSeesOrderAndContent) {
  const auto params = three_tenant_params();
  auto events = generate_arrivals(params, 64);
  const std::uint64_t fp = arrivals_fingerprint(events);
  std::swap(events[0], events[1]);
  EXPECT_NE(arrivals_fingerprint(events), fp);
  std::swap(events[0], events[1]);
  events[5].record = (events[5].record + 3) % 64;
  EXPECT_NE(arrivals_fingerprint(events), fp);
}

}  // namespace
}  // namespace sf
