#include "analysis/annotation.hpp"

#include <gtest/gtest.h>

#include "bio/species.hpp"

namespace sf {
namespace {

struct AnnotationWorld {
  FoldUniverse universe{20, 61};
  FoldingEngine engine{universe};
  FoldLibrary library;
  std::vector<ProteinRecord> hypotheticals;

  AnnotationWorld() : library(universe, library_indices()) {
    SpeciesProfile profile = species_d_vulgaris();
    profile.hypothetical_fraction = 1.0;
    profile.novel_fold_fraction = 0.0;
    profile.length_max = 400;  // keep the test fast
    auto records = ProteomeGenerator(universe, profile, 3).generate(12);
    hypotheticals = std::move(records);
  }

  static std::vector<std::size_t> library_indices() {
    std::vector<std::size_t> v;
    for (std::size_t i = 0; i < 20; ++i) v.push_back(i);
    return v;
  }
};

TEST(Annotation, StructuralSearchRecoversAnnotations) {
  AnnotationWorld w;
  AnnotationParams params;
  params.shortlist = 8;
  const AnnotationSummary summary =
      annotate_hypotheticals(w.engine, w.library, w.hypotheticals, params);
  EXPECT_EQ(summary.total, 12);
  EXPECT_EQ(summary.outcomes.size(), 12u);
  // A majority of hypotheticals get a confident structural match, since
  // their folds genuinely exist in the library.
  EXPECT_GT(summary.structural_match, 5);
  // Matches overwhelmingly point at the generating fold.
  EXPECT_GE(summary.correct_fold_matches * 3, summary.structural_match * 2);
}

TEST(Annotation, LowIdentityMatchesExist) {
  AnnotationWorld w;
  const AnnotationSummary summary =
      annotate_hypotheticals(w.engine, w.library, w.hypotheticals);
  // §4.6's headline: most structural matches sit below 20% sequence
  // identity, where HMM methods fail.
  EXPECT_GE(summary.match_below_20_identity, summary.structural_match / 2 - 1);
  EXPECT_LE(summary.match_below_10_identity, summary.match_below_20_identity);
}

// Counts outcomes that are not structural matches.
int count_non_matches(const AnnotationSummary& summary) {
  int n = 0;
  for (const auto& o : summary.outcomes) {
    if (o.top_tm < 0.60) ++n;
  }
  return n;
}

TEST(Annotation, NovelFoldsBecomeCandidates) {
  // Library missing folds 0-4: targets from those folds with confident
  // predictions should be flagged as novel candidates.
  FoldUniverse universe(20, 61);
  std::vector<std::size_t> partial;
  for (std::size_t i = 5; i < 20; ++i) partial.push_back(i);
  FoldLibrary library(universe, partial);
  FoldingEngine engine(universe);

  SpeciesProfile profile = species_d_vulgaris();
  profile.hypothetical_fraction = 1.0;
  profile.length_max = 350;
  profile.hardness_mean = 0.05;  // confident predictions
  profile.hardness_sd = 0.03;
  auto records = ProteomeGenerator(universe, profile, 4).generate(40);
  // Keep only targets whose fold is absent from the library.
  std::vector<ProteinRecord> absent;
  for (auto& r : records) {
    if (r.fold_index < 5) absent.push_back(r);
  }
  ASSERT_GT(absent.size(), 2u);

  AnnotationParams params;
  params.novel_plddt_cutoff = 75.0;
  const AnnotationSummary summary = annotate_hypotheticals(engine, library, absent, params);
  EXPECT_GT(summary.novel_candidates, 0);
  EXPECT_EQ(summary.structural_match + count_non_matches(summary), summary.total);
}

TEST(Annotation, EmptyInputIsSafe) {
  AnnotationWorld w;
  const AnnotationSummary summary = annotate_hypotheticals(w.engine, w.library, {});
  EXPECT_EQ(summary.total, 0);
  EXPECT_TRUE(summary.outcomes.empty());
}

}  // namespace
}  // namespace sf
