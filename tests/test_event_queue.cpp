#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sf {
namespace {

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  const SimTime end = engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(SimEngine, TiesBreakBySubmissionOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, EventsCanScheduleEvents) {
  SimEngine engine;
  int chain = 0;
  std::function<void()> step = [&] {
    ++chain;
    if (chain < 10) engine.schedule_after(1.0, step);
  };
  engine.schedule_at(0.0, step);
  const SimTime end = engine.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(end, 9.0);
}

TEST(SimEngine, ScheduleAfterUsesCurrentTime) {
  SimEngine engine;
  SimTime fired_at = -1.0;
  engine.schedule_at(5.0, [&] { engine.schedule_after(2.5, [&] { fired_at = engine.now(); }); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastTimesClampToNow) {
  SimEngine engine;
  SimTime fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(1.0, [&] { fired_at = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  // Negative delay also clamps.
  SimEngine e2;
  e2.schedule_after(-3.0, [] {});
  EXPECT_DOUBLE_EQ(e2.run(), 0.0);
}

TEST(SimEngine, RunUntilLeavesLaterEventsQueued) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngine, EmptyRunIsNoop) {
  SimEngine engine;
  EXPECT_TRUE(engine.empty());
  EXPECT_DOUBLE_EQ(engine.run(), 0.0);
}

}  // namespace
}  // namespace sf
