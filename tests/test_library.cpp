#include "seqsearch/library.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

FoldUniverse small_universe() { return FoldUniverse(20, 99); }

TEST(Library, GenerationIsDeterministic) {
  const FoldUniverse u = small_universe();
  LibraryGenParams params;
  params.members_per_weight = 15.0;
  const SequenceLibrary a = generate_full_library(u, params);
  const SequenceLibrary b = generate_full_library(u, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 7) {
    EXPECT_EQ(a.entry(i).sequence.residues(), b.entry(i).sequence.residues());
  }
}

TEST(Library, EveryFoldHasItsCanonical) {
  const FoldUniverse u = small_universe();
  LibraryGenParams params;
  params.members_per_weight = 5.0;
  const SequenceLibrary lib = generate_full_library(u, params);
  std::vector<bool> seen(u.size(), false);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const auto& e = lib.entry(i);
    if (e.identity_to_canonical == 1.0) seen[e.fold_index] = true;
  }
  for (std::size_t f = 0; f < u.size(); ++f) EXPECT_TRUE(seen[f]) << "fold " << f;
}

TEST(Library, LargerFamiliesContributeMore) {
  const FoldUniverse u = small_universe();
  LibraryGenParams params;
  params.members_per_weight = 40.0;
  const SequenceLibrary lib = generate_full_library(u, params);
  std::size_t fold0 = 0, fold19 = 0;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    if (lib.entry(i).fold_index == 0) ++fold0;
    if (lib.entry(i).fold_index == 19) ++fold19;
  }
  EXPECT_GT(fold0, fold19 * 2);
}

TEST(Library, ReductionRemovesNearDuplicatesOnly) {
  const FoldUniverse u = small_universe();
  LibraryGenParams params;
  params.members_per_weight = 30.0;
  params.near_duplicate_fraction = 0.6;
  const SequenceLibrary full = generate_full_library(u, params);
  const SequenceLibrary reduced = reduce_library(full, 0.90);

  // Substantially smaller (the paper's full->reduced is ~5x by bytes).
  EXPECT_LT(reduced.size(), full.size() * 3 / 4);
  EXPECT_GT(reduced.size(), 0u);
  EXPECT_LT(reduced.estimated_bytes(), full.estimated_bytes());

  // Every fold family survives reduction (homology is preserved).
  std::vector<bool> seen(u.size(), false);
  for (std::size_t i = 0; i < reduced.size(); ++i) seen[reduced.entry(i).fold_index] = true;
  for (std::size_t f = 0; f < u.size(); ++f) EXPECT_TRUE(seen[f]);

  // No two kept same-fold entries are near-identical at same length.
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(reduced.size(), i + 40); ++j) {
      const auto& a = reduced.entry(i);
      const auto& b = reduced.entry(j);
      if (a.fold_index != b.fold_index) continue;
      if (a.sequence.length() != b.sequence.length()) continue;
      EXPECT_LT(naive_sequence_identity(a.sequence.residues(), b.sequence.residues()), 0.95);
    }
  }
}

TEST(Library, IndelHomologControlsIdentityAndDrift) {
  Rng rng(5);
  const std::string parent(200, 'A');
  const std::string hom = indel_homolog(parent, 0.7, 0.05, rng);
  // Length drifts but stays in the ballpark.
  EXPECT_NEAR(static_cast<double>(hom.size()), 200.0, 40.0);
  EXPECT_FALSE(hom.empty());
  const std::string exact = indel_homolog(parent, 1.0, 0.0, rng);
  EXPECT_EQ(exact, parent);
}

TEST(Library, BytesScaleWithContent) {
  SequenceLibrary lib("x");
  EXPECT_EQ(lib.total_residues(), 0u);
  LibraryEntry e;
  e.sequence = Sequence("a", std::string(100, 'M'));
  lib.add(e);
  EXPECT_EQ(lib.total_residues(), 100u);
  EXPECT_GT(lib.estimated_bytes(), 100.0);
}

}  // namespace
}  // namespace sf
