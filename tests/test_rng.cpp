#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // inverted range clamps to lo
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GammaMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.15);  // mean = shape * scale

  // Shape < 1 branch.
  sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Rng, LognormalMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(sum / n, std::exp(0.125), 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexDegenerate) {
  Rng rng(29);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 0u);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng parent1(99), parent2(99);
  Rng a = parent1.split(7);
  Rng b = parent2.split(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());

  Rng c = parent1.split(8);
  Rng d = parent1.split("features");
  int same_cd = 0;
  Rng c2 = parent1.split(8);  // same tag from same state -> same stream
  for (int i = 0; i < 50; ++i) {
    if (c.next_u32() == d.next_u32()) ++same_cd;
  }
  EXPECT_LT(same_cd, 3);
  (void)c2;
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, StableHashIsStable) {
  EXPECT_EQ(stable_hash64("summit"), stable_hash64("summit"));
  EXPECT_NE(stable_hash64("summit"), stable_hash64("andes"));
}

TEST(Rng, Mix64Mixes) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0u);
}

}  // namespace
}  // namespace sf
