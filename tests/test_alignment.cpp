#include "seqsearch/alignment.hpp"

#include <gtest/gtest.h>

#include "bio/amino_acid.hpp"

namespace sf {
namespace {

TEST(SmithWaterman, IdenticalSequences) {
  const std::string s = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  const AlignmentResult r = smith_waterman(s, s);
  EXPECT_DOUBLE_EQ(r.identity, 1.0);
  EXPECT_DOUBLE_EQ(r.query_coverage, 1.0);
  EXPECT_EQ(r.pairs.size(), s.size());
  // Score equals the sum of diagonal BLOSUM62 entries.
  int expected = 0;
  for (char c : s) expected += blosum62(c, c);
  EXPECT_EQ(r.score, expected);
}

TEST(SmithWaterman, FindsLocalCore) {
  // Shared core flanked by unrelated tails.
  const std::string core = "WWDDKKLLMMNNQQRRSS";
  const std::string q = "AAAAAAAA" + core + "GGGGGGGG";
  const std::string s = "TTTTTTTTTTTT" + core + "PPPP";
  const AlignmentResult r = smith_waterman(q, s);
  EXPECT_GE(r.pairs.size(), core.size());
  EXPECT_GT(r.identity, 0.8);
  // The aligned query region covers the core.
  EXPECT_LE(r.query_begin, 8);
  EXPECT_GE(r.query_end, static_cast<int>(8 + core.size()));
}

TEST(SmithWaterman, GapHandling) {
  const std::string q = "MKTAYIAKQRQISFVKSHFSRQ";
  std::string s = q;
  s.erase(10, 3);  // deletion of 3 residues
  const AlignmentResult r = smith_waterman(q, s);
  EXPECT_GT(r.identity, 0.95);  // aligned columns still identical
  EXPECT_EQ(r.pairs.size(), s.size());
}

TEST(SmithWaterman, UnrelatedSequencesScoreLow) {
  const std::string q(40, 'W');
  const std::string s(40, 'D');
  const AlignmentResult r = smith_waterman(q, s);
  EXPECT_LE(r.score, 4);  // W/D = -4; nothing positive to chain
}

TEST(SmithWaterman, EmptyInput) {
  EXPECT_EQ(smith_waterman("", "AA").pairs.size(), 0u);
  EXPECT_EQ(smith_waterman("AA", "").pairs.size(), 0u);
}

TEST(NeedlemanWunsch, GlobalAlignsEndToEnd) {
  const std::string q = "MKTAYI";
  const std::string s = "MKTAYI";
  const AlignmentResult r = needleman_wunsch(q, s);
  EXPECT_EQ(r.pairs.size(), 6u);
  EXPECT_DOUBLE_EQ(r.identity, 1.0);
}

TEST(NeedlemanWunsch, PrefersGapsOverBadMatches) {
  // Global alignment of a sequence against itself with an insertion.
  const std::string q = "MKTAYIAKQR";
  const std::string s = "MKTAYIWWWAKQR";
  const AlignmentResult r = needleman_wunsch(q, s);
  // All 10 query residues align to their counterparts.
  EXPECT_GE(r.pairs.size(), 9u);
  EXPECT_GT(r.identity, 0.85);
}

TEST(BandedSW, MatchesFullWhenBandCovers) {
  const std::string q = "MKTAYIAKQRQISFVKSHFSRQLEERLGLI";
  std::string s = q;
  s[5] = 'W';
  s[20] = 'D';
  const AlignmentResult full = smith_waterman(q, s);
  const AlignmentResult banded = banded_smith_waterman(q, s, 0, 16);
  EXPECT_EQ(full.score, banded.score);
  EXPECT_EQ(full.pairs, banded.pairs);
}

TEST(BandedSW, RespectsDiagonalOffset) {
  const std::string core = "MKTAYIAKQRQISFVKSH";
  const std::string q = core;
  const std::string s = std::string(30, 'G') + core;
  // True diagonal is q_pos - s_pos = -30.
  const AlignmentResult hit = banded_smith_waterman(q, s, -30, 8);
  EXPECT_GT(hit.identity, 0.9);
  EXPECT_EQ(hit.pairs.size(), core.size());
  // A far-off band misses the alignment entirely.
  const AlignmentResult miss = banded_smith_waterman(q, s, 30, 4);
  EXPECT_LT(miss.score, hit.score);
}

TEST(Evalue, MonotoneInScoreAndLibrarySize) {
  EXPECT_LT(evalue(100, 200, 1000000), evalue(50, 200, 1000000));
  EXPECT_LT(evalue(100, 200, 1000000), evalue(100, 200, 100000000));
  EXPECT_GT(bit_score(100), bit_score(50));
}

// Property: SW score is symmetric in its arguments for BLOSUM scoring.
class SwSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(SwSymmetry, ScoreSymmetric) {
  const char* seqs[] = {"MKTAYIAKQR", "WWDDKKLLMM", "GGGGAAAAVV", "QISFVKSHFS", "MKWVTFISLL"};
  const std::string a = seqs[GetParam() % 5];
  const std::string b = seqs[(GetParam() + 1) % 5];
  EXPECT_EQ(smith_waterman(a, b).score, smith_waterman(b, a).score);
}

INSTANTIATE_TEST_SUITE_P(Pairs, SwSymmetry, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace sf
