#include "sim/jsrun.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(Jsrun, CommandLineFlags) {
  const ResourceSet rs{"workers", 12, 1, 1, 1};
  const std::string cmd = rs.command_line("dask-worker");
  EXPECT_NE(cmd.find("--nrs 12"), std::string::npos);
  EXPECT_NE(cmd.find("--cpu_per_rs 1"), std::string::npos);
  EXPECT_NE(cmd.find("--gpu_per_rs 1"), std::string::npos);
  EXPECT_NE(cmd.find("dask-worker"), std::string::npos);
}

TEST(Jsrun, PaperLayoutMatchesSection33) {
  const LaunchPlan plan = paper_inference_launch(32);
  ASSERT_EQ(plan.sets.size(), 3u);  // scheduler + workers + client
  // Scheduler: one set, two cores, no GPU.
  EXPECT_EQ(plan.sets[0].num_sets, 1);
  EXPECT_EQ(plan.sets[0].cores_per_set, 2);
  EXPECT_EQ(plan.sets[0].gpus_per_set, 0);
  // Workers: one per GPU across 32 nodes = 192 sets of 1 core + 1 GPU.
  EXPECT_EQ(plan.sets[1].num_sets, 192);
  EXPECT_EQ(plan.sets[1].cores_per_set, 1);
  EXPECT_EQ(plan.sets[1].gpus_per_set, 1);
  // Client: one single-core set.
  EXPECT_EQ(plan.sets[2].num_sets, 1);
  EXPECT_EQ(plan.sets[2].gpus_per_set, 0);
}

TEST(Jsrun, PaperLayoutFitsSummit) {
  for (int nodes : {1, 32, 91, 200, 1000}) {
    std::string error;
    EXPECT_TRUE(paper_inference_launch(nodes).fits(summit(), &error)) << error;
  }
}

TEST(Jsrun, OverSubscriptionDetected) {
  LaunchPlan plan = paper_inference_launch(4);
  plan.sets[1].num_sets = 4 * 6 + 1;  // one worker too many for the GPUs
  std::string error;
  EXPECT_FALSE(plan.fits(summit(), &error));
  EXPECT_NE(error.find("GPUs"), std::string::npos);

  LaunchPlan cores = paper_inference_launch(1);
  cores.sets[0].cores_per_set = 10000;
  EXPECT_FALSE(cores.fits(summit(), &error));
  EXPECT_NE(error.find("cores"), std::string::npos);
}

TEST(Jsrun, MachineSizeRespected) {
  LaunchPlan plan = paper_inference_launch(5000);  // > 4600 Summit nodes
  std::string error;
  EXPECT_FALSE(plan.fits(summit(), &error));
}

TEST(Jsrun, NoGpusOnAndes) {
  // The worker layout cannot fit a CPU-only machine.
  const LaunchPlan plan = paper_inference_launch(4);
  EXPECT_FALSE(plan.fits(andes()));
}

TEST(Jsrun, ScriptRendering) {
  const LaunchPlan plan = paper_inference_launch(32);
  const std::string script = plan.lsf_script(summit());
  EXPECT_NE(script.find("#BSUB -nnodes 32"), std::string::npos);
  EXPECT_NE(script.find("dask-scheduler"), std::string::npos);
  EXPECT_NE(script.find("dask-worker"), std::string::npos);
  EXPECT_NE(script.find("run_inference.py"), std::string::npos);
  // Three jsrun statements, first two backgrounded.
  std::size_t count = 0;
  for (std::size_t pos = script.find("jsrun"); pos != std::string::npos;
       pos = script.find("jsrun", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Jsrun, RelaxationVariant) {
  const LaunchPlan plan = paper_relaxation_launch(8);
  EXPECT_EQ(plan.job_name, "af2_relaxation");
  EXPECT_EQ(plan.sets[1].num_sets, 48);  // §4.5: 8 nodes x 6 workers
  EXPECT_TRUE(plan.fits(summit()));
}

}  // namespace
}  // namespace sf
