// Integration tests of the pipeline's design choices (the ablations
// DESIGN.md calls out): ordering policy, preset, OOM routing, replica
// layout.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fold/memory_model.hpp"

namespace sf {
namespace {

struct AblationWorld {
  FoldUniverse universe{40, 83};
  std::vector<ProteinRecord> records;

  AblationWorld() {
    SpeciesProfile profile = species_d_vulgaris();
    records = ProteomeGenerator(universe, profile, 21).generate(60);
  }

  PipelineConfig base_config() const {
    PipelineConfig cfg;
    cfg.summit_nodes = 2;
    cfg.andes_nodes = 8;
    cfg.relax_nodes = 1;
    cfg.db_replicas = 4;
    cfg.jobs_per_replica = 2;
    cfg.quality_sample = 20;
    cfg.relax_sample = 5;
    return cfg;
  }
};

TEST(PipelineAblation, SortingBeatsRandomOrder) {
  AblationWorld w;
  PipelineConfig sorted = w.base_config();
  sorted.order = TaskOrder::kDescendingCost;
  PipelineConfig random = w.base_config();
  random.order = TaskOrder::kRandom;
  const CampaignReport rs = Pipeline(w.universe, sorted).run(w.records);
  const CampaignReport rr = Pipeline(w.universe, random).run(w.records);
  EXPECT_LE(rs.inference.wall_s, rr.inference.wall_s * 1.02);
  EXPECT_LE(rs.inference.finish_spread_s, rr.inference.finish_spread_s + 1.0);
}

TEST(PipelineAblation, SuperPresetCostsMoreThanReducedDb) {
  AblationWorld w;
  PipelineConfig reduced = w.base_config();
  reduced.preset = preset_reduced_db();
  PipelineConfig super = w.base_config();
  super.preset = preset_super();
  const CampaignReport r_red = Pipeline(w.universe, reduced).run(w.records);
  const CampaignReport r_sup = Pipeline(w.universe, super).run(w.records);
  EXPECT_GT(r_sup.inference.node_hours, r_red.inference.node_hours);
  // Quality does not get worse for the extra recycles.
  EXPECT_GE(r_sup.ptms.mean(), r_red.ptms.mean() - 0.01);
}

TEST(PipelineAblation, Casp14OomTargetsDroppedWithoutHighmem) {
  // Long proteins + 8 ensembles: all five models OOM; without high-memory
  // rerouting the targets are dropped, as the paper's Table 1 footnote
  // describes.
  FoldUniverse universe(10, 5);
  SpeciesProfile profile = benchmark_559_profile();
  profile.length_min = 1100;
  profile.length_log_mu = 7.1;
  const auto records = ProteomeGenerator(universe, profile, 3).generate(6);
  for (const auto& r : records) ASSERT_FALSE(fits_standard_node(r.length(), 8));

  PipelineConfig cfg;
  cfg.preset = preset_casp14();
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.quality_sample = 6;
  cfg.relax_sample = 0;
  cfg.use_highmem_for_oom = false;
  const CampaignReport rep = Pipeline(universe, cfg).run(records);
  int dropped = 0;
  for (const auto& t : rep.targets) {
    if (t.oom) ++dropped;
  }
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(rep.inference.failed_tasks, 30);  // 6 targets x 5 models

  // With high-memory rerouting the tasks bill extra node-hours instead.
  PipelineConfig highmem = cfg;
  highmem.use_highmem_for_oom = true;
  highmem.highmem_nodes = 1;
  const CampaignReport rep_hm = Pipeline(universe, highmem).run(records);
  EXPECT_EQ(rep_hm.inference.failed_tasks, 0);
  EXPECT_GT(rep_hm.inference.node_hours, rep.inference.node_hours);
}

TEST(PipelineAblation, ReplicaLayoutChangesFeatureWall) {
  AblationWorld w;
  PipelineConfig spread = w.base_config();   // 4 replicas x 2 jobs
  PipelineConfig crowded = w.base_config();
  crowded.db_replicas = 1;
  crowded.jobs_per_replica = 8;  // same 8 jobs, one contended copy
  const CampaignReport r_spread = Pipeline(w.universe, spread).run(w.records);
  const CampaignReport r_crowded = Pipeline(w.universe, crowded).run(w.records);
  EXPECT_LT(r_spread.features.wall_s, r_crowded.features.wall_s);
}

TEST(PipelineAblation, RelaxStageSkipsDroppedTargets) {
  FoldUniverse universe(10, 5);
  SpeciesProfile profile = benchmark_559_profile();
  profile.length_min = 1100;
  profile.length_log_mu = 7.1;
  const auto records = ProteomeGenerator(universe, profile, 3).generate(4);
  PipelineConfig cfg;
  cfg.preset = preset_casp14();
  cfg.summit_nodes = 1;
  cfg.andes_nodes = 2;
  cfg.relax_nodes = 1;
  cfg.quality_sample = 4;
  cfg.relax_sample = 0;
  cfg.use_highmem_for_oom = false;
  const CampaignReport rep = Pipeline(universe, cfg).run(records);
  EXPECT_EQ(rep.relaxation.tasks, 0);  // nothing survived to relax
}

}  // namespace
}  // namespace sf
