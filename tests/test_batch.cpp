#include "sim/batch.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(Batch, SingleJobRunsImmediately) {
  BatchScheduler sched(10, QueuePolicy::kFcfs);
  const auto out = sched.schedule({{"j", 4, 100.0, 0.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(out[0].end_s, 100.0);
  EXPECT_DOUBLE_EQ(out[0].queue_wait_s(), 0.0);
}

TEST(Batch, CapacityIsNeverExceeded) {
  BatchScheduler sched(10, QueuePolicy::kFcfs);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back({"j", 4, 50.0, 0.0});
  const auto out = sched.schedule(jobs);
  // Verify concurrent node usage at every event boundary.
  for (const auto& probe : out) {
    const double t = probe.start_s + 1e-6;
    int used = 0;
    for (const auto& s : out) {
      if (s.start_s <= t && t < s.end_s) used += s.job.nodes;
    }
    EXPECT_LE(used, 10);
  }
  // 2 jobs fit at a time -> 4 waves of 50s.
  EXPECT_DOUBLE_EQ(BatchScheduler::makespan(out), 200.0);
}

TEST(Batch, FcfsOrderPreserved) {
  BatchScheduler sched(4, QueuePolicy::kFcfs);
  const auto out = sched.schedule({{"a", 4, 10.0, 0.0}, {"b", 4, 10.0, 0.0}});
  EXPECT_LT(out[0].start_s, out[1].start_s);
}

TEST(Batch, LargeJobPriorityReordersQueue) {
  // Summit-style: the 8-node job jumps ahead of earlier small jobs.
  BatchScheduler sched(8, QueuePolicy::kLargeJobPriority);
  const auto out = sched.schedule({
      {"small1", 1, 100.0, 0.0},
      {"small2", 1, 100.0, 0.0},
      {"big", 8, 50.0, 0.0},
  });
  EXPECT_DOUBLE_EQ(out[2].start_s, 0.0);   // big first
  EXPECT_GE(out[0].start_s, 50.0);
  EXPECT_GE(out[1].start_s, 50.0);
}

TEST(Batch, SmallJobPriorityIsOpposite) {
  BatchScheduler sched(8, QueuePolicy::kSmallJobPriority);
  const auto out = sched.schedule({
      {"big", 8, 50.0, 0.0},
      {"small", 1, 100.0, 0.0},
  });
  EXPECT_DOUBLE_EQ(out[1].start_s, 0.0);  // small first
  EXPECT_DOUBLE_EQ(out[0].start_s, 100.0);
}

TEST(Batch, BackfillFillsGaps) {
  // 6-node machine: a 4-node job runs; a queued 4-node job must wait, but
  // a 2-node job can backfill immediately.
  BatchScheduler sched(6, QueuePolicy::kFcfs);
  const auto out = sched.schedule({
      {"first", 4, 100.0, 0.0},
      {"blocked", 4, 10.0, 0.0},
      {"filler", 2, 10.0, 0.0},
  });
  EXPECT_DOUBLE_EQ(out[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(out[2].start_s, 0.0);    // backfilled
  EXPECT_GE(out[1].start_s, 100.0);
}

TEST(Batch, LateSubmissionsWait) {
  BatchScheduler sched(4, QueuePolicy::kFcfs);
  const auto out = sched.schedule({{"late", 2, 10.0, 500.0}});
  EXPECT_DOUBLE_EQ(out[0].start_s, 500.0);
}

TEST(Batch, OversizedJobRejected) {
  BatchScheduler sched(4, QueuePolicy::kFcfs);
  const auto out = sched.schedule({{"too_big", 8, 10.0, 0.0}, {"fits", 2, 10.0, 0.0}});
  EXPECT_DOUBLE_EQ(out[0].end_s, out[0].start_s);  // rejected: zero runtime
  EXPECT_DOUBLE_EQ(out[1].end_s, 10.0);
}

TEST(Batch, NodeSecondsAccounting) {
  BatchScheduler sched(10, QueuePolicy::kFcfs);
  const auto out = sched.schedule({{"a", 4, 100.0, 0.0}, {"b", 2, 50.0, 0.0}});
  EXPECT_DOUBLE_EQ(BatchScheduler::node_seconds(out), 4 * 100.0 + 2 * 50.0);
}

TEST(Batch, AndesVsSummitWallTimeStory) {
  // §5: feature generation on Andes used fewer node-hours than inference
  // on Summit but took longer wall time, because the machine is smaller
  // and the queue favors small jobs. Reproduce with a crowded small
  // machine vs a large machine.
  std::vector<BatchJob> feature_jobs;
  for (int i = 0; i < 24; ++i) feature_jobs.push_back({"feat", 4, 3600.0, 0.0});
  std::vector<BatchJob> inference_jobs{{"infer", 32 * 4, 3600.0, 0.0}};

  // Competing background load on the small machine.
  std::vector<BatchJob> andes_queue = feature_jobs;
  for (int i = 0; i < 30; ++i) andes_queue.push_back({"other", 8, 7200.0, 0.0});

  BatchScheduler andes_sched(60, QueuePolicy::kSmallJobPriority);
  BatchScheduler summit_sched(4600, QueuePolicy::kLargeJobPriority);
  const auto andes_out = andes_sched.schedule(andes_queue);
  const auto summit_out = summit_sched.schedule(inference_jobs);
  double feature_makespan = 0.0;
  double feature_node_s = 0.0;
  for (const auto& s : andes_out) {
    if (s.job.name == "feat") {
      feature_makespan = std::max(feature_makespan, s.end_s);
      feature_node_s += s.job.nodes * (s.end_s - s.start_s);
    }
  }
  const double inference_makespan = BatchScheduler::makespan(summit_out);
  const double inference_node_s = BatchScheduler::node_seconds(summit_out);
  EXPECT_GT(feature_makespan, inference_makespan);  // longer wall
  EXPECT_LT(feature_node_s, inference_node_s);      // fewer node-seconds
}

}  // namespace
}  // namespace sf
