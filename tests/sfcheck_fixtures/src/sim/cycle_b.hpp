// sfcheck fixture: the other half of an equal-rank include cycle.
#pragma once
#include "fold/cycle_a.hpp"
