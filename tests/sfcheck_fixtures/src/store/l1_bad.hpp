// sfcheck fixture: L1 violation (store reaching up into core).
#pragma once
#include "core/pipeline.hpp"
