// sfcheck fixture: D3 violation (the store's manifest image must be
// insertion-ordered; unordered iteration would make eviction order and
// the compacted bytes depend on the hash seed).
#include <ostream>
#include <unordered_map>

void store_d3_bad(std::ostream& out) {
  std::unordered_map<unsigned long long, unsigned long long> bytes_by_key;
  bytes_by_key[7] = 4096;
  for (const auto& [key, bytes] : bytes_by_key) {
    out << key << ' ' << bytes << '\n';
  }
}
