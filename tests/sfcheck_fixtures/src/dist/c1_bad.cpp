// C1 fixture: the impure-task-lambda patterns inside the dist module --
// the closure-purity rule follows task functions into the distributed
// subsystem (coordinator/node callbacks are TaskFns too).
#include <vector>

void run_dist_c1(std::vector<double>& acc, double acc_total, Ctx& ctx) {
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    TaskOutcome o;
    acc.push_back(o.sim_duration_s);
    acc_total += o.sim_duration_s;
    ctx.store->put(t.id);
    return o;
  };
  const TaskFn worker = [=](const TaskSpec& t, const TaskAttempt&) mutable {
    TaskOutcome o;
    return o;
  };
  (void)fn;
  (void)worker;
}
