// sfcheck fixture: L1 violation (dist reaching up into core).
#pragma once
#include "core/pipeline.hpp"
