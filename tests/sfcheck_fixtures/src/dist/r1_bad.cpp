// R1 fixture: a dist-module task function reads the wall clock through
// the sanctioned shim. Message latencies must be pure functions of
// (seed, topology, payload); the taint rule must reach the new module.
void run_dist_r1() {
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    return wallclock_now();
  };
  (void)fn;
}
