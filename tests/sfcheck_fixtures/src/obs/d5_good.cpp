// D5 fixture: canonical formatting -- sf::format with explicit
// precision on every float conversion.
#include <string>

#include "util/string_util.hpp"

std::string emit_d5_good(double v, int wave) {
  std::string line = sf::format("%.17g", v);
  line += sf::format("|%d", wave);
  return line;
}
