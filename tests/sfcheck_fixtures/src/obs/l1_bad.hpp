// sfcheck fixture: L1 violation (obs reaching up into core).
#pragma once
#include "core/pipeline.hpp"
