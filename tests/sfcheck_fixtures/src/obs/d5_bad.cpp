// D5 fixture: the banned float-formatting forms in an emit module --
// bare stream insertion of a float, std::to_string, a direct
// printf-family call, and a precision-less %f spec.
#include <cstdio>
#include <ostream>
#include <string>

void emit_d5_bad(std::ostream& out) {
  double total = 3.5;
  out << total;
  const std::string s = std::to_string(total);
  std::printf("%f\n", total);
  (void)s;
}
