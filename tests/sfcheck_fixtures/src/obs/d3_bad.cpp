// sfcheck fixture: D3 violation (obs emits traces; unordered iteration
// would make the span order depend on the hash seed).
#include <ostream>
#include <unordered_map>

void obs_d3_bad(std::ostream& out) {
  std::unordered_map<int, double> busy_by_worker;
  busy_by_worker[2] = 4.5;
  for (const auto& [worker, busy] : busy_by_worker) {
    out << worker << ',' << busy << '\n';
  }
}
