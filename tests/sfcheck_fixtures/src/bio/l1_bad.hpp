// sfcheck fixture: L1 violation (bio reaching up into geom).
#pragma once
#include "geom/structure.hpp"
