// sfcheck fixture: L1-clean downward includes (fold sits above bio).
#include "bio/sequence.hpp"
#include "util/rng.hpp"
