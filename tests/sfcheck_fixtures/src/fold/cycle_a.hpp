// sfcheck fixture: one half of an equal-rank include cycle.
#pragma once
#include "sim/cycle_b.hpp"
