// sfcheck fixture: D3-clean -- keys are sorted before emission.
#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <vector>

void d3_good(std::ostream& out) {
  std::unordered_map<int, double> totals_by_key;
  totals_by_key[3] = 1.5;
  std::vector<std::pair<int, double>> rows(totals_by_key.begin(),
                                           totals_by_key.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [key, total] : rows) {
    out << key << ',' << total << '\n';
  }
}
