// sfcheck fixture: D1-clean RNG usage (seeded engines, sf::Rng).
#include <random>

#include "util/rng.hpp"

double d1_good(unsigned seed, sf::Rng& rng) {
  std::mt19937 seeded(seed);
  std::mt19937 braced{seed};
  return rng.uniform() + static_cast<double>(seeded() + braced());
}
