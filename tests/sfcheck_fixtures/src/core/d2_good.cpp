// sfcheck fixture: D2-clean code (simulated time only; identifiers
// that merely contain clock-ish substrings must not fire).
double d2_good(double sim_now, double runtime) {
  const double end_time = sim_now + runtime;
  return end_time;
}
