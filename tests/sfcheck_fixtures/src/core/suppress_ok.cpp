// sfcheck fixture: a reasoned suppression silences the diagnostic.
#include <fstream>

void suppress_ok(const char* path) {
  std::ofstream raw(path);  // sfcheck:allow(D4): fixture demonstrating a reasoned suppression
  raw << 1;
}
