// sfcheck fixture: D1 violations (unseeded / hidden-state RNG).
#include <cstdlib>
#include <random>

int d1_bad() {
  int x = rand();
  std::random_device rd;
  std::mt19937 gen;
  return x + static_cast<int>(rd()) + static_cast<int>(gen());
}
