// C1 fixture: the three impurity patterns in task lambdas -- mutation
// of captured state (method and compound-assign), a store call inside
// the task body, and a `mutable` lambda.
#include <vector>

void run_c1_stage(std::vector<double>& acc, double acc_total, Ctx& ctx) {
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    TaskOutcome o;
    acc.push_back(o.sim_duration_s);
    acc_total += o.sim_duration_s;
    ctx.store->put(t.id);
    return o;
  };
  const TaskFn worker = [=](const TaskSpec& t, const TaskAttempt&) mutable {
    TaskOutcome o;
    return o;
  };
  (void)fn;
  (void)worker;
}
