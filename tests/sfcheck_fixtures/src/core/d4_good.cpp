// sfcheck fixture: D4-clean write through the torn-write-safe helper.
#include <ostream>
#include <string>

#include "util/file_io.hpp"

void d4_good(const std::string& path) {
  sf::write_file_atomic(path, [](std::ostream& out) { out << "row\n"; });
}
