// sfcheck fixture: a suppression without a reason is itself an error
// and silences nothing.
#include <fstream>

void suppress_noreason(const char* path) {
  std::ofstream raw(path);  // sfcheck:allow(D4)
  raw << 1;
}
