// sfcheck fixture: D4 violation (naked ofstream outside the helpers).
#include <fstream>

void d4_bad(const char* path) {
  std::ofstream out(path);
  out << "partial";
}
