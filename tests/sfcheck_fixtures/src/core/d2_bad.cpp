// sfcheck fixture: D2 violations (wall-clock reads).
#include <chrono>
#include <ctime>

double d2_bad() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = time(nullptr);
  return static_cast<double>(t) + static_cast<double>(now.time_since_epoch().count());
}
