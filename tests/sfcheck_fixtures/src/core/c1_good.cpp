// C1 fixture: the sanctioned pure task-function shape -- locals plus
// per-task slot writes only.
#include <vector>

void run_c1_good(std::vector<double>& results) {
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    TaskOutcome o;
    o.sim_duration_s = 1.5;
    results[t.id] = o.sim_duration_s;
    return o;
  };
  (void)fn;
}
