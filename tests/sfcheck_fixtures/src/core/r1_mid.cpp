// Middle hop of the R1 chain fixture: nothing wrong here either.
double geom_helper(int seed);

double helper_a(int seed) {
  return geom_helper(seed) * 2.0;
}
