// sfcheck fixture: D3 violations (unordered iteration feeding output).
#include <ostream>
#include <unordered_map>

void d3_bad(std::ostream& out) {
  std::unordered_map<int, double> totals_by_id;
  totals_by_id[3] = 1.5;
  for (const auto& [id, total] : totals_by_id) {
    out << id << ',' << total << '\n';
  }
  for (auto it = totals_by_id.begin(); it != totals_by_id.end(); ++it) {
    out << it->first << '\n';
  }
}
