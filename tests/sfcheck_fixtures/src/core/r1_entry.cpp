// R1 fixture: the task function is locally clean -- the wall-clock
// read is two calls away (helper_a in r1_mid.cpp, geom_helper in
// src/geom/r1_sink.cpp). Only the interprocedural rule can see it.
double helper_a(int seed);

void run_r1_stage() {
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    TaskOutcome o;
    o.sim_duration_s = helper_a(t.id);
    return o;
  };
  (void)fn;
}
