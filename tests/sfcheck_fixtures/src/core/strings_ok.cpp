// sfcheck fixture: banned names inside literals and comments are fine.
// A comment mentioning rand() or std::system_clock must not fire.
#include <string>

std::string strings_ok() {
  const char* msg = "call rand() or time(nullptr) at your peril";
  return std::string(msg) + "std::ofstream and unordered_map<int,int> here";
}
