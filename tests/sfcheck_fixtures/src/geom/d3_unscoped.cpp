// sfcheck fixture: unordered iteration in a module that emits no
// deterministic artifacts (geom is outside the D3 scope) -- clean.
#include <ostream>
#include <unordered_map>

void d3_unscoped(std::ostream& out) {
  std::unordered_map<int, int> grid_cells;
  grid_cells[1] = 2;
  for (const auto& [cell, count] : grid_cells) {
    out << cell + count;
  }
}
