// Sink of the R1 chain fixture: a real wall-clock read. D2 flags this
// line locally; R1 reports the full chain from the task entry in
// src/core/r1_entry.cpp.
#include <chrono>

double geom_helper(int seed) {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count() % (seed + 1));
}
