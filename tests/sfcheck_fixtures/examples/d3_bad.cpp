// examples/ is a pseudo-module: its stdout tables are replay artifacts,
// so the order-determinism rule D3 covers it like the src/ emit
// modules. (D5 does not: examples format via printf with explicit
// precision by convention.)
#include <cstdio>
#include <unordered_map>

void print_counts(const std::unordered_map<int, int>& counts) {
  for (const auto& [k, v] : counts) {
    std::printf("%d %d\n", k, v);
  }
}
