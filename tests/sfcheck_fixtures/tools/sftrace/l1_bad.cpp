// sfcheck fixture: L1 violation (sftrace reaching up into core; the
// CLI may only consume obs and util).
#include "core/pipeline.hpp"

int sftrace_l1_bad() { return 0; }
