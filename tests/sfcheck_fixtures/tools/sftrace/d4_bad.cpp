// sfcheck fixture: D4 violation (tools must write through the
// torn-write-safe helpers too).
#include <fstream>

void sftrace_d4_bad(const char* path) {
  std::ofstream out(path);
  out << "partial";
}
