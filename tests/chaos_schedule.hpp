// Randomized fault-schedule generator for the chaos suite.
//
// One seed fully determines a chaos case: the task set, the worker-pool
// shape, the RetryPolicy, and the FaultPlan. The chaos tests sweep
// hundreds of seeds through both executor backends and compare against
// a pure oracle (tests/test_chaos_campaign.cpp), so every generated
// dimension here must stay a function of the seed alone.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/executor.hpp"
#include "util/rng.hpp"

namespace sf {
namespace chaos {

struct ChaosCase {
  std::vector<TaskSpec> tasks;
  FaultPlan plan;
  RetryPolicy policy;
  int workers = 1;
  int alt_workers = 0;
};

inline std::vector<TaskSpec> make_tasks(Rng& rng) {
  const int n = static_cast<int>(rng.uniform_int(8, 60));
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "chaos" + std::to_string(i);
    t.cost_hint = rng.lognormal(2.0, 0.7);
    t.payload = static_cast<std::size_t>(i);
    tasks.push_back(t);
  }
  return tasks;
}

inline FaultPlan make_plan(std::uint64_t seed, Rng& rng) {
  FaultPlan plan;
  plan.seed = mix64(seed, 0xC4A05C4A05ULL);
  // Each class is dropped entirely in ~1/3 of plans so the suite also
  // covers schedules where a class never fires.
  const auto rate = [&rng](double hi) { return rng.chance(0.67) ? rng.uniform(0.0, hi) : 0.0; };
  plan.crash_rate = rate(0.15);
  plan.transient_rate = rate(0.2);
  plan.transient_attempts = static_cast<int>(rng.uniform_int(1, 3));
  plan.oom_rate = rate(0.2);
  plan.straggler_rate = rate(0.25);
  plan.straggler_factor = rng.uniform(2.0, 6.0);
  plan.fs_stall_rate = rate(0.2);
  plan.fs_stall_base_s = rng.uniform(5.0, 60.0);
  plan.fs_stall_jobs = static_cast<int>(rng.uniform_int(1, 16));
  return plan;
}

inline RetryPolicy make_policy(Rng& rng) {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(rng.uniform_int(1, 5));
  policy.reroute_to_alt_pool = rng.chance(0.5);
  policy.retry_cost_scale = rng.chance(0.3) ? 1.5 : 1.0;
  if (rng.chance(0.4)) policy.backoff_base_s = rng.uniform(1.0, 20.0);
  policy.retry_order = rng.chance(0.5) ? TaskOrder::kSubmission : TaskOrder::kDescendingCost;
  policy.seed = rng.next_u64();
  return policy;
}

inline ChaosCase make_case(std::uint64_t seed) {
  Rng rng(seed, 0xC4A05);
  ChaosCase c;
  c.tasks = make_tasks(rng);
  c.plan = make_plan(seed, rng);
  c.policy = make_policy(rng);
  c.workers = static_cast<int>(rng.uniform_int(1, 10));
  c.alt_workers = static_cast<int>(rng.uniform_int(0, 3));
  return c;
}

}  // namespace chaos
}  // namespace sf
