#include "relax/protocol.hpp"

#include <gtest/gtest.h>

#include "bio/proteome.hpp"
#include "bio/species.hpp"
#include "fold/engine.hpp"
#include "native/render.hpp"
#include "score/specs_score.hpp"
#include "score/tm_score.hpp"
#include "seqsearch/feature_model.hpp"

namespace sf {
namespace {

// Unrelaxed predicted models straight from the engine: the honest input
// distribution for relaxation (occasional spikes -> clashes/bumps).
struct RelaxWorld {
  FoldUniverse universe{40, 23};
  ProteomeGenerator gen{universe, casp14_profile(), 8};
  std::vector<ProteinRecord> records = gen.generate(8);
  FoldingEngine engine{universe};

  Prediction predict(const ProteinRecord& rec) const {
    return engine.predict(rec, sample_features(rec, LibraryKind::kReduced), five_models()[0],
                          preset_genome());
  }
};

TEST(Protocol, SinglePassRemovesClashes) {
  RelaxWorld w;
  std::size_t clashes_before = 0, clashes_after = 0;
  for (const auto& rec : w.records) {
    const Prediction p = w.predict(rec);
    if (p.out_of_memory) continue;
    const RelaxOutcome out = relax_single_pass(p.structure);
    clashes_before += out.violations_before.clashes;
    clashes_after += out.violations_after.clashes;
    EXPECT_LE(out.violations_after.bumps, out.violations_before.bumps);
    EXPECT_EQ(out.rounds, 1);
  }
  // §4.4: clash violations are completely removed by minimization.
  EXPECT_EQ(clashes_after, 0u);
}

TEST(Protocol, Af2LoopAlsoRemovesClashes) {
  RelaxWorld w;
  const Prediction p = w.predict(w.records[0]);
  const RelaxOutcome out = relax_af2_loop(p.structure);
  EXPECT_EQ(out.violations_after.clashes, 0u);
  EXPECT_GE(out.rounds, 1);
  EXPECT_LE(out.rounds, 5);
}

TEST(Protocol, RelaxationPreservesStructure) {
  // Fig. 3: TM-score and SPECS of relaxed vs unrelaxed models correlate
  // strongly; no major structural changes.
  RelaxWorld w;
  for (const auto& rec : {w.records[0], w.records[1]}) {
    const Prediction p = w.predict(rec);
    const Structure native = build_native_structure(w.universe, rec);
    const RelaxOutcome out = relax_single_pass(p.structure);
    const double tm_before = tm_score(p.structure, native).tm_score;
    const double tm_after = tm_score(out.relaxed, native).tm_score;
    EXPECT_NEAR(tm_after, tm_before, 0.03);
    const double specs_before = specs_score(p.structure, native).specs;
    const double specs_after = specs_score(out.relaxed, native).specs;
    EXPECT_GT(specs_after, specs_before - 0.03);
  }
}

TEST(Protocol, SinglePassCheaperThanAf2Loop) {
  RelaxWorld w;
  const Prediction p = w.predict(w.records[2]);
  const RelaxOutcome ours = relax_single_pass(p.structure);
  const RelaxOutcome af2 = relax_af2_loop(p.structure);
  // Same or more evaluations for the loop protocol...
  EXPECT_GE(af2.energy_evaluations, ours.energy_evaluations);
  // ...and strictly more simulated wall time on matched hardware because
  // of the violation checks and heavier topology.
  const RelaxCostModel cost;
  EXPECT_GT(af2.simulated_seconds(RelaxPlatform::kAf2Original, cost),
            ours.simulated_seconds(RelaxPlatform::kAndesCpu, cost));
}

TEST(Protocol, GpuPlatformFasterThanCpu) {
  // Fig. 4: the GPU wins for medium-to-large systems; tiny systems are
  // dominated by the GPU's setup latency (the curves cross at the left
  // edge of the plot). Compare on the largest target in the set.
  RelaxWorld w;
  const ProteinRecord* largest = &w.records[0];
  for (const auto& rec : w.records) {
    if (rec.length() > largest->length()) largest = &rec;
  }
  ASSERT_GT(largest->length(), 250);
  const Prediction p = w.predict(*largest);
  const RelaxOutcome out = relax_single_pass(p.structure);
  const RelaxCostModel cost;
  const double gpu = out.simulated_seconds(RelaxPlatform::kSummitGpu, cost);
  const double cpu = out.simulated_seconds(RelaxPlatform::kAndesCpu, cost);
  EXPECT_LT(gpu, cpu);
}

TEST(Protocol, SpeedupGrowsWithSystemSize) {
  // Fig. 4B: GPU speedup over the AF2 method grows with heavy atoms.
  RelaxCostModel cost;
  const std::size_t evals = 400;
  double prev_speedup = 0.0;
  for (std::size_t atoms : {800u, 3000u, 8000u, 16000u}) {
    const double af2 = cost.task_seconds(RelaxPlatform::kAf2Original, atoms, evals, 2);
    const double gpu = cost.task_seconds(RelaxPlatform::kSummitGpu, atoms, evals, 1);
    const double speedup = af2 / gpu;
    EXPECT_GT(speedup, prev_speedup);
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 8.0);  // paper: up to ~14x at the large end
}

TEST(Protocol, OutcomeMetadataConsistent) {
  RelaxWorld w;
  const Prediction p = w.predict(w.records[4]);
  const RelaxOutcome out = relax_single_pass(p.structure);
  EXPECT_EQ(out.heavy_atoms, static_cast<std::size_t>(p.structure.heavy_atom_count()));
  EXPECT_EQ(out.relaxed.size(), p.structure.size());
  EXPECT_LE(out.final_energy, out.initial_energy);
}

TEST(Protocol, FireBackendWorksToo) {
  RelaxWorld w;
  const Prediction p = w.predict(w.records[5]);
  RelaxParams params;
  params.backend = MinimizerBackend::kFire;
  const RelaxOutcome out = relax_single_pass(p.structure, params);
  EXPECT_EQ(out.violations_after.clashes, 0u);
}

}  // namespace
}  // namespace sf
