// Chaos harness for the fault-injection subsystem and the campaign
// checkpoint journal.
//
// Three layers of assurance:
//  * executor-level property sweep: hundreds of seeded fault schedules
//    (tests/chaos_schedule.hpp) run against a pure oracle -- every task
//    completes or is reported failed, attempt/retry/reroute accounting
//    reconciles exactly with the injected schedule, results are
//    independent of worker count, and both backends agree;
//  * campaign-level determinism: a faulty campaign reruns bit-identically
//    and its per-target results do not depend on cluster width;
//  * kill/resume: a campaign journal truncated at many byte prefixes
//    (line boundaries and torn mid-line tails) resumes to a
//    CampaignReport identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "store/artifact_store.hpp"
#include "chaos_schedule.hpp"

namespace sf {
namespace {

// ------------------------------------------------------------------ //
// Executor-level oracle.
// ------------------------------------------------------------------ //

// Pure re-derivation of a chaos case's fate from the fault plan and the
// retry policy alone -- no executor involved. The executors must agree
// with this exactly, on any backend and any worker count.
struct Oracle {
  std::map<std::uint64_t, int> attempts;  // per task
  int failed_tasks = 0;
  int retry_attempts = 0;
  int rerouted_tasks = 0;
  std::vector<std::pair<int, bool>> rounds;  // (size, alt_pool)
  FaultAccounting acct;                      // integer fields only
};

Oracle predict(const chaos::ChaosCase& c) {
  const FaultInjector inj(c.plan);
  const bool alt_present = c.alt_workers > 0;
  Oracle o;
  std::vector<std::uint64_t> active;
  for (const auto& t : c.tasks) active.push_back(t.id);
  for (int a = 0; a < c.policy.max_attempts; ++a) {
    const bool alt = a > 0 && c.policy.reroute_to_alt_pool && alt_present;
    if (a > 0) {
      if (active.empty()) break;
      o.rounds.emplace_back(static_cast<int>(active.size()), alt);
      o.retry_attempts += static_cast<int>(active.size());
      if (alt) o.rerouted_tasks += static_cast<int>(active.size());
    }
    std::vector<std::uint64_t> next;
    for (const std::uint64_t id : active) {
      ++o.attempts[id];
      switch (inj.assigned(id)) {
        case FaultKind::kNone:
          break;
        case FaultKind::kWorkerCrash:
          if (a == 0 && !alt) {
            ++o.acct.crash_attempts;
            next.push_back(id);
          }
          break;
        case FaultKind::kTransient:
          if (a < c.plan.transient_attempts) {
            ++o.acct.transient_attempts;
            next.push_back(id);
          }
          break;
        case FaultKind::kOom:
          if (!alt) {
            ++o.acct.oom_attempts;
            next.push_back(id);
          }
          break;
        case FaultKind::kStraggler:
          ++o.acct.straggler_attempts;
          break;
        case FaultKind::kFsStall:
          ++o.acct.stalled_attempts;
          break;
      }
    }
    active = std::move(next);
  }
  o.failed_tasks = static_cast<int>(active.size());
  o.acct.workers_lost = std::min(o.acct.crash_attempts, std::max(0, c.workers - 1));
  return o;
}

struct Observed {
  MapResult run;
  std::map<std::uint64_t, int> attempts;
};

Observed run_case(Executor& exec, const chaos::ChaosCase& c) {
  Observed obs;
  std::mutex mu;
  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++obs.attempts[t.id];
    }
    TaskOutcome o;
    o.sim_duration_s = t.cost_hint;
    return o;
  };
  const FaultInjector inj(c.plan);
  obs.run = exec.map(c.tasks, fn, c.policy, &inj);
  return obs;
}

SimulatedExecutor make_sim(const chaos::ChaosCase& c, int workers) {
  SimulatedDataflowParams primary;
  primary.workers = workers;
  SimulatedDataflowParams alt;
  alt.workers = c.alt_workers;
  return SimulatedExecutor{primary, alt};
}

void expect_matches_oracle(const Observed& obs, const Oracle& want, std::uint64_t seed,
                           const char* backend) {
  SCOPED_TRACE(std::string(backend) + " seed " + std::to_string(seed));
  EXPECT_EQ(obs.attempts, want.attempts);
  EXPECT_EQ(obs.run.failed_tasks, want.failed_tasks);
  EXPECT_EQ(obs.run.retry_attempts, want.retry_attempts);
  EXPECT_EQ(obs.run.rerouted_tasks, want.rerouted_tasks);
  ASSERT_EQ(obs.run.retries.size(), want.rounds.size());
  for (std::size_t r = 0; r < want.rounds.size(); ++r) {
    EXPECT_EQ(obs.run.retries[r].tasks, want.rounds[r].first);
    EXPECT_EQ(obs.run.retries[r].alt_pool, want.rounds[r].second);
  }
  const FaultAccounting& got = obs.run.faults;
  EXPECT_EQ(got.crash_attempts, want.acct.crash_attempts);
  EXPECT_EQ(got.transient_attempts, want.acct.transient_attempts);
  EXPECT_EQ(got.oom_attempts, want.acct.oom_attempts);
  EXPECT_EQ(got.straggler_attempts, want.acct.straggler_attempts);
  EXPECT_EQ(got.stalled_attempts, want.acct.stalled_attempts);
  EXPECT_EQ(got.workers_lost, want.acct.workers_lost);
  EXPECT_EQ(got.intrinsic_failures, 0);
  // Every attempt is either a success or an attributed failure: total
  // invocations reconcile with tasks + attributed retries + failures.
  int total_attempts = 0;
  for (const auto& [id, count] : obs.attempts) total_attempts += count;
  EXPECT_EQ(total_attempts, static_cast<int>(obs.run.primary.records.size()) +
                                obs.run.retry_attempts);
}

TEST(ChaosSchedules, SimulatedMatchesOracleOver200Schedules) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const chaos::ChaosCase c = chaos::make_case(seed);
    const Oracle want = predict(c);
    SimulatedExecutor sim = make_sim(c, c.workers);
    const Observed obs = run_case(sim, c);
    expect_matches_oracle(obs, want, seed, "simulated");
    // Completion guarantee: one primary record per task (the first
    // attempt always runs every task), and no task is silently lost.
    EXPECT_EQ(obs.run.primary.records.size(), c.tasks.size());
    EXPECT_EQ(static_cast<int>(obs.attempts.size()), static_cast<int>(c.tasks.size()));
  }
}

TEST(ChaosSchedules, ThreadedMatchesOracleOver200Schedules) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const chaos::ChaosCase c = chaos::make_case(seed);
    Oracle want = predict(c);
    // Thread counts are capped: chaos worker widths model Summit pools,
    // not host threads. Dead workers are bounded by the real pool.
    const int threads = std::min(c.workers, 4);
    want.acct.workers_lost = std::min(want.acct.crash_attempts, std::max(0, threads - 1));
    ThreadedExecutor threaded(static_cast<std::size_t>(threads),
                              static_cast<std::size_t>(std::min(c.alt_workers, 2)));
    const Observed obs = run_case(threaded, c);
    expect_matches_oracle(obs, want, seed, "threaded");
  }
}

TEST(ChaosSchedules, FaultScheduleIndependentOfWorkerCount) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const chaos::ChaosCase c = chaos::make_case(seed);
    SimulatedExecutor narrow = make_sim(c, 1);
    SimulatedExecutor wide = make_sim(c, c.workers + 7);
    const Observed a = run_case(narrow, c);
    const Observed b = run_case(wide, c);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // The schedule (who faults, who retries, who fails) is a pure
    // function of the plan: pool width changes wall time only.
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.run.failed_tasks, b.run.failed_tasks);
    EXPECT_EQ(a.run.retry_attempts, b.run.retry_attempts);
    EXPECT_EQ(a.run.rerouted_tasks, b.run.rerouted_tasks);
    EXPECT_EQ(a.run.faults.crash_attempts, b.run.faults.crash_attempts);
    EXPECT_EQ(a.run.faults.transient_attempts, b.run.faults.transient_attempts);
    EXPECT_EQ(a.run.faults.oom_attempts, b.run.faults.oom_attempts);
    EXPECT_EQ(a.run.faults.straggler_attempts, b.run.faults.straggler_attempts);
    EXPECT_EQ(a.run.faults.stalled_attempts, b.run.faults.stalled_attempts);
  }
}

TEST(ChaosSchedules, SimulatedRerunIsBitIdentical) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const chaos::ChaosCase c = chaos::make_case(seed);
    SimulatedExecutor first = make_sim(c, c.workers);
    SimulatedExecutor second = make_sim(c, c.workers);
    const Observed a = run_case(first, c);
    const Observed b = run_case(second, c);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(a.run.wall_s(), b.run.wall_s());
    EXPECT_EQ(a.run.primary_pool_s(), b.run.primary_pool_s());
    EXPECT_EQ(a.run.alt_pool_s(), b.run.alt_pool_s());
    EXPECT_EQ(a.run.faults.lost_work_s, b.run.faults.lost_work_s);
    EXPECT_EQ(a.run.faults.straggler_delay_s, b.run.faults.straggler_delay_s);
    EXPECT_EQ(a.run.faults.stall_delay_s, b.run.faults.stall_delay_s);
    EXPECT_EQ(a.run.faults.backoff_delay_s, b.run.faults.backoff_delay_s);
    ASSERT_EQ(a.run.primary.records.size(), b.run.primary.records.size());
    for (std::size_t i = 0; i < a.run.primary.records.size(); ++i) {
      EXPECT_EQ(a.run.primary.records[i].task_id, b.run.primary.records[i].task_id);
      EXPECT_EQ(a.run.primary.records[i].worker, b.run.primary.records[i].worker);
      EXPECT_EQ(a.run.primary.records[i].start_s, b.run.primary.records[i].start_s);
      EXPECT_EQ(a.run.primary.records[i].end_s, b.run.primary.records[i].end_s);
    }
  }
}

// ------------------------------------------------------------------ //
// Campaign level: determinism, width independence, kill/resume.
// ------------------------------------------------------------------ //

PipelineConfig chaos_campaign_config() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 6;
  cfg.relax_sample = 3;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  cfg.faults.seed = 77;
  cfg.faults.crash_rate = 0.06;
  cfg.faults.transient_rate = 0.08;
  cfg.faults.transient_attempts = 1;
  cfg.faults.oom_rate = 0.05;
  cfg.faults.straggler_rate = 0.1;
  cfg.faults.straggler_factor = 3.0;
  cfg.faults.fs_stall_rate = 0.05;
  cfg.faults.fs_stall_base_s = 20.0;
  return cfg;
}

void expect_stage_eq(const StageReport& a, const StageReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.node_hours, b.node_hours);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.rerouted_tasks, b.rerouted_tasks);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.finish_spread_s, b.finish_spread_s);
  EXPECT_EQ(a.faults.crash_attempts, b.faults.crash_attempts);
  EXPECT_EQ(a.faults.transient_attempts, b.faults.transient_attempts);
  EXPECT_EQ(a.faults.oom_attempts, b.faults.oom_attempts);
  EXPECT_EQ(a.faults.intrinsic_failures, b.faults.intrinsic_failures);
  EXPECT_EQ(a.faults.straggler_attempts, b.faults.straggler_attempts);
  EXPECT_EQ(a.faults.stalled_attempts, b.faults.stalled_attempts);
  EXPECT_EQ(a.faults.workers_lost, b.faults.workers_lost);
  EXPECT_EQ(a.faults.lost_work_s, b.faults.lost_work_s);
  EXPECT_EQ(a.faults.straggler_delay_s, b.faults.straggler_delay_s);
  EXPECT_EQ(a.faults.stall_delay_s, b.faults.stall_delay_s);
  EXPECT_EQ(a.faults.backoff_delay_s, b.faults.backoff_delay_s);
}

void expect_targets_eq(const std::vector<TargetResult>& a, const std::vector<TargetResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("target " + std::to_string(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].measured, b[i].measured);
    EXPECT_EQ(a[i].top_model, b[i].top_model);
    EXPECT_EQ(a[i].plddt, b[i].plddt);
    EXPECT_EQ(a[i].ptms, b[i].ptms);
    EXPECT_EQ(a[i].true_tm, b[i].true_tm);
    EXPECT_EQ(a[i].true_lddt, b[i].true_lddt);
    EXPECT_EQ(a[i].recycles, b[i].recycles);
    EXPECT_EQ(a[i].converged, b[i].converged);
    EXPECT_EQ(a[i].oom, b[i].oom);
    EXPECT_EQ(a[i].relaxed, b[i].relaxed);
    EXPECT_EQ(a[i].clashes_before, b[i].clashes_before);
    EXPECT_EQ(a[i].clashes_after, b[i].clashes_after);
    EXPECT_EQ(a[i].bumps_before, b[i].bumps_before);
    EXPECT_EQ(a[i].bumps_after, b[i].bumps_after);
  }
}

void expect_campaign_eq(const CampaignReport& a, const CampaignReport& b) {
  expect_stage_eq(a.features, b.features);
  expect_stage_eq(a.inference, b.inference);
  expect_stage_eq(a.relaxation, b.relaxation);
  expect_targets_eq(a.targets, b.targets);
  EXPECT_EQ(a.plddt.count(), b.plddt.count());
  EXPECT_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_EQ(a.ptms.mean(), b.ptms.mean());
  EXPECT_EQ(a.recycles.mean(), b.recycles.mean());
  ASSERT_EQ(a.inference_records.size(), b.inference_records.size());
  for (std::size_t i = 0; i < a.inference_records.size(); ++i) {
    EXPECT_EQ(a.inference_records[i].task_id, b.inference_records[i].task_id);
    EXPECT_EQ(a.inference_records[i].worker, b.inference_records[i].worker);
    EXPECT_EQ(a.inference_records[i].start_s, b.inference_records[i].start_s);
    EXPECT_EQ(a.inference_records[i].end_s, b.inference_records[i].end_s);
  }
}

TEST(ChaosCampaign, FaultyCampaignIsDeterministicAndFullyAccounted) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = chaos_campaign_config();
  const CampaignReport a = Pipeline(universe, cfg).run(records);
  const CampaignReport b = Pipeline(universe, cfg).run(records);
  expect_campaign_eq(a, b);

  // The plan actually fired somewhere, and its effects are attributed.
  FaultAccounting total;
  total.merge(a.features.faults);
  total.merge(a.inference.faults);
  total.merge(a.relaxation.faults);
  EXPECT_GT(total.injected_failures() + total.straggler_attempts + total.stalled_attempts, 0);
  EXPECT_EQ(a.inference.retry_attempts > 0 || a.features.retry_attempts > 0 ||
                a.relaxation.retry_attempts > 0,
            total.injected_failures() + total.intrinsic_failures > 0);

  // Every measured target either produced a model or was dropped and
  // reported as such -- no silent losses under chaos.
  for (const auto& t : a.targets) {
    if (t.measured) {
      EXPECT_TRUE(t.oom || (t.top_model >= 1 && t.top_model <= 5)) << t.id;
    }
  }
}

TEST(ChaosCampaign, TargetResultsIndependentOfClusterWidth) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  PipelineConfig narrow = chaos_campaign_config();
  PipelineConfig wide = chaos_campaign_config();
  wide.summit_nodes = 5;
  wide.andes_nodes = 9;
  const CampaignReport a = Pipeline(universe, narrow).run(records);
  const CampaignReport b = Pipeline(universe, wide).run(records);
  // Scientific results are schedule-independent: only walls/node-hours
  // may move with pool width.
  expect_targets_eq(a.targets, b.targets);
  EXPECT_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_EQ(a.ptms.mean(), b.ptms.mean());
  EXPECT_EQ(a.inference.faults.oom_attempts, b.inference.faults.oom_attempts);
  EXPECT_EQ(a.inference.faults.transient_attempts, b.inference.faults.transient_attempts);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(ChaosCampaign, JournalResumeReproducesUninterruptedRun) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = chaos_campaign_config();
  const Pipeline pipeline(universe, cfg);

  // Uninterrupted baseline, then a journaled run that must match it.
  const CampaignReport baseline = pipeline.run(records);
  const std::string dir = ::testing::TempDir();
  const std::string full_path = dir + "chaos_journal_full.sfj";
  write_file(full_path, "");
  {
    CampaignJournal journal(full_path);
    const CampaignReport journaled = pipeline.run(records, &journal);
    expect_campaign_eq(baseline, journaled);
  }
  const std::string full = read_file(full_path);
  ASSERT_NE(full.find("sfjournal v1"), std::string::npos);
  ASSERT_NE(full.find("measured "), std::string::npos);
  ASSERT_NE(full.find("stage features"), std::string::npos);
  ASSERT_NE(full.find("stage inference"), std::string::npos);
  ASSERT_NE(full.find("stage relaxation"), std::string::npos);

  // Kill points: every line boundary (a clean kill between appends)...
  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') cuts.push_back(pos + 1);
  }
  // ...plus torn mid-line tails (a kill mid-write) at assorted offsets.
  const std::size_t line_cuts = cuts.size();
  for (std::size_t i = 0; i + 1 < line_cuts; i += 3) {
    const std::size_t mid = (cuts[i] + cuts[i + 1]) / 2;
    if (mid > cuts[i]) cuts.push_back(mid);
  }
  // Keep runtime bounded: resume from every torn tail but cap clean
  // boundaries to an even sample across the file.
  std::vector<std::size_t> selected;
  const std::size_t max_clean = 24;
  const std::size_t stride = std::max<std::size_t>(1, line_cuts / max_clean);
  for (std::size_t i = 0; i < line_cuts; i += stride) selected.push_back(cuts[i]);
  for (std::size_t i = line_cuts; i < cuts.size(); i += 2) selected.push_back(cuts[i]);

  int resumed_runs = 0;
  for (const std::size_t cut : selected) {
    const std::string path = dir + "chaos_journal_cut_" + std::to_string(cut) + ".sfj";
    write_file(path, full.substr(0, cut));
    CampaignJournal journal(path);
    const CampaignReport resumed = pipeline.run(records, &journal);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    expect_campaign_eq(baseline, resumed);
    ++resumed_runs;
  }
  EXPECT_GE(resumed_runs, 20);

  // A fully sealed journal resumes without recomputing anything heavy
  // and still reproduces the report bit-for-bit.
  {
    CampaignJournal journal(full_path);
    const CampaignReport resumed = pipeline.run(records, &journal);
    expect_campaign_eq(baseline, resumed);
  }
}

TEST(ChaosCampaign, JournalResumeWithWarmStoreReproducesAtEveryCut) {
  // Same kill-at-any-byte discipline as above, but every resume also
  // sees a warm artifact store: cache hits must never perturb the
  // replayed campaign, at any truncation point.
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = chaos_campaign_config();
  const Pipeline pipeline(universe, cfg);
  const CampaignReport baseline = pipeline.run(records);

  const std::string dir = ::testing::TempDir() + "chaos_warm_store";
  std::filesystem::remove_all(dir);
  const std::string full_path = ::testing::TempDir() + "chaos_store_journal.sfj";
  write_file(full_path, "");
  {
    store::ArtifactStore artifacts(dir);
    artifacts.open();
    CampaignJournal journal(full_path);
    const CampaignReport journaled = pipeline.run(records, &journal, nullptr, &artifacts);
    expect_campaign_eq(baseline, journaled);
  }
  const std::string full = read_file(full_path);

  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') cuts.push_back(pos + 1);
  }
  const std::size_t line_cuts = cuts.size();
  std::vector<std::size_t> selected;
  const std::size_t stride = std::max<std::size_t>(1, line_cuts / 12);
  for (std::size_t i = 0; i < line_cuts; i += stride) {
    selected.push_back(cuts[i]);
    // A torn tail a few bytes into the next line at every sampled spot.
    if (i + 1 < line_cuts && cuts[i] + 4 < cuts[i + 1]) selected.push_back(cuts[i] + 4);
  }

  int resumed_runs = 0;
  for (const std::size_t cut : selected) {
    const std::string path =
        ::testing::TempDir() + "chaos_store_cut_" + std::to_string(cut) + ".sfj";
    write_file(path, full.substr(0, cut));
    store::ArtifactStore warm(dir);
    EXPECT_TRUE(warm.open());
    CampaignJournal journal(path);
    const CampaignReport resumed = pipeline.run(records, &journal, nullptr, &warm);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    expect_campaign_eq(baseline, resumed);
    // A warm store never recomputes features on resume.
    ASSERT_FALSE(warm.stage_history().empty());
    EXPECT_EQ(warm.stage_history()[0].first, "features");
    EXPECT_EQ(warm.stage_history()[0].second.misses, 0u);
    ++resumed_runs;
  }
  EXPECT_GE(resumed_runs, 20);
}

TEST(ChaosCampaign, JournalRejectsForeignFingerprint) {
  FoldUniverse universe(40, 31);
  const auto records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(12);
  const PipelineConfig cfg = chaos_campaign_config();
  const Pipeline pipeline(universe, cfg);
  const CampaignReport baseline = pipeline.run(records);

  const std::string path = ::testing::TempDir() + "chaos_journal_foreign.sfj";
  {
    write_file(path, "");
    CampaignJournal journal(path);
    pipeline.run(records, &journal);
  }
  // Same journal file, different campaign (different fault seed): the
  // stale rows must be discarded, not spliced into the new campaign.
  PipelineConfig other = cfg;
  other.faults.seed = 78;
  {
    CampaignJournal journal(path);
    EXPECT_FALSE(journal.open(campaign_fingerprint(other, records)));
  }
  // And the original campaign, rerun against the now-reset journal,
  // still reproduces its baseline from scratch.
  {
    CampaignJournal journal(path);
    const CampaignReport resumed = pipeline.run(records, &journal);
    expect_campaign_eq(baseline, resumed);
  }
}

TEST(ChaosCampaign, JournalKeepsFirstRowOnDuplicateAndDropsGarbageTail) {
  const std::string path = ::testing::TempDir() + "chaos_journal_unit.sfj";
  write_file(path, "");
  StageReport report;
  report.name = "features";
  report.wall_s = 123.0625;  // representable exactly
  report.tasks = 9;
  {
    CampaignJournal journal(path);
    journal.open(0xABCDULL);
    JournalMeasuredRow row;
    row.index = 4;
    row.plddt = 81.5;
    row.top_model = 2;
    journal.record_measured(row);
    row.plddt = 10.0;  // duplicate for the same index: must be ignored
    journal.record_measured(row);
    journal.record_stage_complete(StageKind::kFeatures, report);
  }
  // Append a torn line (no `end` seal) and pure garbage.
  {
    std::ofstream out(path, std::ios::app);
    out << "measured 5 1 50.0";
  }
  CampaignJournal journal(path);
  EXPECT_TRUE(journal.open(0xABCDULL));
  ASSERT_NE(journal.measured_row(4), nullptr);
  EXPECT_EQ(journal.measured_row(4)->plddt, 81.5);
  EXPECT_EQ(journal.measured_row(5), nullptr);  // torn tail discarded
  ASSERT_TRUE(journal.stage_complete(StageKind::kFeatures));
  EXPECT_EQ(journal.stage_report(StageKind::kFeatures)->wall_s, 123.0625);
  EXPECT_EQ(journal.stage_report(StageKind::kFeatures)->tasks, 9);
  EXPECT_FALSE(journal.stage_complete(StageKind::kInference));
}

}  // namespace
}  // namespace sf
