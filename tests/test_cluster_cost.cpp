#include <gtest/gtest.h>

#include "fold/engine.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"

namespace sf {
namespace {

TEST(Cluster, PaperSpecs) {
  const MachineSpec s = summit();
  EXPECT_EQ(s.nodes, 4600);          // ~4,600 AC922 nodes
  EXPECT_EQ(s.gpus_per_node, 6);     // 6x V100
  EXPECT_EQ(s.total_gpus(), 27600);
  EXPECT_DOUBLE_EQ(s.gpu_mem_gb, 16.0);
  EXPECT_GT(s.highmem_nodes, 0);
  EXPECT_DOUBLE_EQ(s.highmem_node_mem_gb, 2048.0);  // 2 TB DDR4

  const MachineSpec a = andes();
  EXPECT_EQ(a.nodes, 704);
  EXPECT_EQ(a.cores_per_node, 32);  // 2x 16-core EPYC 7302
  EXPECT_EQ(a.gpus_per_node, 0);

  const MachineSpec p = phoenix();
  EXPECT_EQ(p.gpus_per_node, 4);   // 4x RTX6000
  EXPECT_DOUBLE_EQ(p.gpu_mem_gb, 24.0);
}

TEST(Cluster, NodeHours) {
  EXPECT_DOUBLE_EQ(node_hours(32, 3600.0), 32.0);
  EXPECT_DOUBLE_EQ(node_hours(1000, 1800.0), 500.0);
  EXPECT_DOUBLE_EQ(node_hours(0, 1e9), 0.0);
}

TEST(InferenceCost, ScalesWithEverything) {
  const InferenceCostModel m;
  // Length (superlinear: attention is quadratic).
  const double t200 = m.task_seconds(200, 4, 1);
  const double t400 = m.task_seconds(400, 4, 1);
  const double t800 = m.task_seconds(800, 4, 1);
  EXPECT_GT(t400, t200);
  EXPECT_GT(t800 - t400, t400 - t200);  // convex in length
  // Recycles.
  EXPECT_GT(m.task_seconds(200, 8, 1), m.task_seconds(200, 4, 1));
  // Ensembles: casp14's 8 ensembles cost ~8x the compute.
  const double e1 = m.task_seconds(300, 4, 1) - m.task_overhead_s;
  const double e8 = m.task_seconds(300, 4, 8) - m.task_overhead_s;
  EXPECT_NEAR(e8 / e1, 8.0, 1e-9);
  // Faster GPU -> less time.
  EXPECT_LT(m.task_seconds(300, 4, 1, 2.0), m.task_seconds(300, 4, 1, 1.0));
}

TEST(InferenceCost, CalibrationBallpark) {
  // Table 1 anchor: 559 seqs x 5 models, reduced_db (4 passes) on 192
  // GPUs took 44 min. Mean task for a 202-AA sequence should be a few
  // hundred GPU-seconds.
  const InferenceCostModel m;
  const double t = m.task_seconds(202, 4, 1);
  EXPECT_GT(t, 100.0);
  EXPECT_LT(t, 500.0);
}

TEST(InferenceCost, PredictionSecondsUsesTrace) {
  const InferenceCostModel m;
  Prediction p;
  p.trace.recycles_run = 3;
  p.ensembles = 1;
  EXPECT_DOUBLE_EQ(m.prediction_seconds(p, 200), m.task_seconds(200, 4, 1));
}

TEST(FeatureCost, FullLibraryCostsMore) {
  const FeatureCostModel m;
  EXPECT_GT(m.task_seconds(300, true), m.task_seconds(300, false));
  EXPECT_NEAR(m.task_seconds(300, true) / m.task_seconds(300, false),
              m.full_library_factor, 0.01);
}

TEST(FeatureCost, IoSlowdownDilatesOnlyIoShare) {
  const FeatureCostModel m;
  const double base = m.task_seconds(300, false, 1.0);
  const double slow = m.task_seconds(300, false, 10.0);
  // Only the io_fraction share dilates 10x.
  EXPECT_NEAR(slow / base, (1.0 - m.io_fraction) + m.io_fraction * 10.0, 1e-9);
}

TEST(FeatureCost, CalibrationBallpark) {
  // §4.1 anchor: 3,205 proteins (mean 328 AA) took ~240 Andes node-hours
  // -> ~270 node-seconds per protein with the reduced library.
  const FeatureCostModel m;
  EXPECT_NEAR(m.task_seconds(328, false), 270.0, 90.0);
}

}  // namespace
}  // namespace sf
