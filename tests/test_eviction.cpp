// src/store: pluggable eviction policies (FIFO / LRU / cost-aware).
//
// Locks the semantics DESIGN.md §3.3 promises, per policy:
//  * FIFO evicts the lowest insertion seq and writes a pure-v1 manifest
//    (no touch/cost lines) -- the seed behavior, byte-for-byte;
//  * LRU evicts the least-recently-touched entry, where gets AND puts
//    both count as touches (ticks share the put counter);
//  * cost-aware ranks by modeled recompute-seconds-per-byte and never
//    evicts an entry denser than one it retains; a zero-byte entry is
//    free to keep and therefore immortal.
// All three are checked against a pure shadow oracle over a seeded
// traffic sweep, and all three must make identical eviction decisions
// across a mid-sequence close/reopen (manifest compaction).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "store/artifact_store.hpp"
#include "store/key.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

store::ArtifactKey key_of(int i) {
  return store::artifact_key(mix64(0xe71cULL, static_cast<std::uint64_t>(i)), "features",
                             0xc0f1ULL);
}

store::StagingPricer test_pricer() {
  store::StagingPricer p;
  p.replicas = 4;
  p.total_jobs = 16;
  return p;
}

store::StorePolicy policy_of(store::EvictionPolicy ep, std::uint64_t capacity) {
  store::StorePolicy p;
  p.capacity_bytes = capacity;
  p.eviction = ep;
  return p;
}

std::vector<store::ArtifactKey> live_keys(const store::ArtifactStore& s) {
  std::vector<store::ArtifactKey> keys;
  for (const auto& e : s.manifest().entries()) keys.push_back(e.key);
  return keys;
}

// ------------------------------------------------------------------ //
// Policy names.
// ------------------------------------------------------------------ //

TEST(EvictionPolicy, NamesRoundTrip) {
  using store::EvictionPolicy;
  for (const EvictionPolicy ep :
       {EvictionPolicy::kFifo, EvictionPolicy::kLru, EvictionPolicy::kCostAware}) {
    EvictionPolicy back;
    ASSERT_TRUE(store::eviction_policy_from_name(store::eviction_policy_name(ep), back));
    EXPECT_EQ(back, ep);
  }
  store::EvictionPolicy out;
  EXPECT_FALSE(store::eviction_policy_from_name("mru", out));
  EXPECT_FALSE(store::eviction_policy_from_name("", out));
}

// ------------------------------------------------------------------ //
// Targeted per-policy semantics.
// ------------------------------------------------------------------ //

TEST(EvictionFifo, EvictsLowestSeqIgnoringUse) {
  const std::string dir = fresh_dir("evict_fifo");
  store::ArtifactStore s(dir, policy_of(store::EvictionPolicy::kFifo, 2500));
  s.open();
  s.begin_stage("features", test_pricer());
  s.put(key_of(1), "a", "one", 1000.0);
  s.put(key_of(2), "b", "two", 1000.0);
  // Heavy reuse of key 1 changes nothing under FIFO: insertion order is
  // the whole story.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.get(key_of(1)).has_value());
  s.put(key_of(3), "c", "three", 1000.0);
  EXPECT_FALSE(s.contains(key_of(1)));
  EXPECT_TRUE(s.contains(key_of(2)));
  EXPECT_TRUE(s.contains(key_of(3)));
}

TEST(EvictionLru, GetsAndPutsBothCountAsTouches) {
  const std::string dir = fresh_dir("evict_lru");
  store::ArtifactStore s(dir, policy_of(store::EvictionPolicy::kLru, 2500));
  s.open();
  s.begin_stage("features", test_pricer());
  s.put(key_of(1), "a", "one", 1000.0);  // seq 1, tick 1
  s.put(key_of(2), "b", "two", 1000.0);  // seq 2, tick 2
  // A get refreshes recency: key 1 jumps ahead of key 2 ...
  ASSERT_TRUE(s.get(key_of(1)).has_value());  // tick 3
  s.put(key_of(3), "c", "three", 1000.0);     // seq/tick 4: evicts 2, not 1
  EXPECT_TRUE(s.contains(key_of(1)));
  EXPECT_FALSE(s.contains(key_of(2)));
  EXPECT_TRUE(s.contains(key_of(3)));
  // ... and a put is a use too: the fresh key 3 (tick 4) outranks the
  // key-1 get at tick 3, so the next pressure evicts key 1.
  s.put(key_of(4), "d", "four", 1000.0);
  EXPECT_FALSE(s.contains(key_of(1)));
  EXPECT_TRUE(s.contains(key_of(3)));
  EXPECT_TRUE(s.contains(key_of(4)));
}

TEST(EvictionCost, KeepsTheExpensivePerByteArtifacts) {
  const std::string dir = fresh_dir("evict_cost");
  store::ArtifactStore s(dir, policy_of(store::EvictionPolicy::kCostAware, 2500));
  s.open();
  s.begin_stage("features", test_pricer());
  // Density (recompute seconds per modeled byte) decides, not age:
  //   key 1: 1000 B at 900 s  -> 0.9 s/B   (oldest, but precious)
  //   key 2: 1000 B at  10 s  -> 0.01 s/B  (cheap to rebuild)
  //   key 3: 1000 B at 100 s  -> 0.1 s/B
  s.put(key_of(1), "a", "one", 1000.0, 900.0);
  s.put(key_of(2), "b", "two", 1000.0, 10.0);
  s.put(key_of(3), "c", "three", 1000.0, 100.0);  // evicts 2 (lowest density)
  EXPECT_TRUE(s.contains(key_of(1)));
  EXPECT_FALSE(s.contains(key_of(2)));
  EXPECT_TRUE(s.contains(key_of(3)));
  // Another push: the fresh put is exempt, so the victim is the lowest
  // density among the survivors -- key 3 (0.1), never key 1 (0.9).
  s.put(key_of(4), "d", "four", 1000.0, 50.0);
  EXPECT_TRUE(s.contains(key_of(1)));
  EXPECT_FALSE(s.contains(key_of(3)));
  EXPECT_TRUE(s.contains(key_of(4)));
}

TEST(EvictionCost, ZeroByteEntryIsNeverWorthEvicting) {
  const std::string dir = fresh_dir("evict_cost_zero");
  store::ArtifactStore s(dir, policy_of(store::EvictionPolicy::kCostAware, 2000));
  s.open();
  s.begin_stage("features", test_pricer());
  s.put(key_of(1), "z", "zero", 0.0, 5.0);  // 0 modeled bytes: density +inf
  for (int i = 2; i <= 8; ++i) {
    s.put(key_of(i), "k" + std::to_string(i), "payload", 1000.0, 100.0 * i);
  }
  // Plenty of eviction pressure later, but the zero-byte entry costs
  // nothing to keep and something to rebuild: it must survive.
  EXPECT_TRUE(s.contains(key_of(1)));
  EXPECT_GT(s.total_stats().evictions, 0u);
}

// ------------------------------------------------------------------ //
// Shadow oracle: the store's live set under pressure must match a pure
// re-derivation of the documented policy, step by step.
// ------------------------------------------------------------------ //

struct ShadowEntry {
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;
  std::uint64_t last_touch = 0;
  double cost_s = 0.0;

  double density() const {
    if (bytes == 0) return std::numeric_limits<double>::infinity();
    return cost_s / static_cast<double>(bytes);
  }
};

class ShadowStore {
 public:
  ShadowStore(store::EvictionPolicy policy, std::uint64_t capacity)
      : policy_(policy), capacity_(capacity) {}

  void put(int key, std::uint64_t bytes, double cost_s) {
    ShadowEntry e;
    e.bytes = bytes;
    e.seq = e.last_touch = next_seq_++;
    e.cost_s = policy_ == store::EvictionPolicy::kCostAware ? cost_s : 0.0;
    total_ += bytes;
    live_[key] = e;
    while (total_ > capacity_ && live_.size() > 1) {
      const int victim = pick_victim(key);
      total_ -= live_[victim].bytes;
      live_.erase(victim);
    }
  }

  bool get(int key) {  // returns hit
    const auto it = live_.find(key);
    if (it == live_.end()) return false;
    if (policy_ == store::EvictionPolicy::kLru) it->second.last_touch = next_seq_++;
    return true;
  }

  std::set<int> live_set() const {
    std::set<int> out;
    for (const auto& [k, e] : live_) out.insert(k);
    return out;
  }

 private:
  int pick_victim(int keep) const {
    int best = -1;
    for (const auto& [k, e] : live_) {
      if (k == keep) continue;
      if (best < 0) {
        best = k;
        continue;
      }
      const ShadowEntry& b = live_.at(best);
      bool better = false;
      switch (policy_) {
        case store::EvictionPolicy::kFifo:
          better = e.seq < b.seq;
          break;
        case store::EvictionPolicy::kLru:
          better = e.last_touch != b.last_touch ? e.last_touch < b.last_touch : e.seq < b.seq;
          break;
        case store::EvictionPolicy::kCostAware:
          better = e.density() != b.density() ? e.density() < b.density() : e.seq < b.seq;
          break;
      }
      if (better) best = k;
    }
    return best;
  }

  store::EvictionPolicy policy_;
  std::uint64_t capacity_ = 0;
  std::map<int, ShadowEntry> live_;
  std::uint64_t total_ = 0;
  std::uint64_t next_seq_ = 1;
};

std::set<int> store_live_set(const store::ArtifactStore& s, int key_count) {
  std::set<int> out;
  for (int k = 0; k < key_count; ++k) {
    if (s.contains(key_of(k))) out.insert(k);
  }
  return out;
}

TEST(EvictionOracle, AllPoliciesMatchShadowUnderSeededTraffic) {
  using store::EvictionPolicy;
  constexpr int kKeys = 20;
  constexpr std::uint64_t kCapacity = 6000;
  for (const EvictionPolicy ep :
       {EvictionPolicy::kFifo, EvictionPolicy::kLru, EvictionPolicy::kCostAware}) {
    SCOPED_TRACE(store::eviction_policy_name(ep));
    const std::string dir = fresh_dir(std::string("evict_oracle_") +
                                      store::eviction_policy_name(ep));
    store::ArtifactStore s(dir, policy_of(ep, kCapacity));
    s.open();
    s.begin_stage("features", test_pricer());
    ShadowStore shadow(ep, kCapacity);

    Rng rng(0x5eedc0deULL, static_cast<std::uint64_t>(ep) + 1);
    std::set<int> ever_put;
    for (int step = 0; step < 200; ++step) {
      const int key = static_cast<int>(rng.next_u64() % kKeys);
      if (rng.next_u64() % 3 == 0 && ever_put.count(key)) {
        // get: a hit must agree between store and shadow, and under LRU
        // both bump the same recency tick.
        EXPECT_EQ(s.get(key_of(key)).has_value(), shadow.get(key)) << "step " << step;
      } else {
        const std::uint64_t bytes = 500 + rng.next_u64() % 2000;
        const double cost_s = 1.0 + static_cast<double>(rng.next_u64() % 5000);
        // The oracle does not model put-over-live-key; skip those.
        if (s.contains(key_of(key))) continue;
        shadow.put(key, bytes, cost_s);
        s.put(key_of(key), "k" + std::to_string(key), "payload" + std::to_string(step),
              static_cast<double>(bytes), cost_s);
        ever_put.insert(key);
      }
      ASSERT_EQ(store_live_set(s, kKeys), shadow.live_set()) << "step " << step;
    }
    EXPECT_GT(s.total_stats().evictions, 0u);

    // Cost-aware invariant, stated directly: everything still live is at
    // least as dense as anything would need to be -- concretely, the
    // minimum retained density is well-defined and every entry satisfies
    // the manifest's own ranking (no NaNs, no negative densities).
    if (ep == EvictionPolicy::kCostAware) {
      for (const auto& e : s.manifest().entries()) {
        EXPECT_GE(e.cost_density(), 0.0);
      }
    }
  }
}

TEST(EvictionCost, NeverEvictsDenserThanARetainedEntry) {
  // Direct statement of the cost-aware contract: at the moment of each
  // eviction, the victim's density is <= every retained entry's density.
  // Observed by diffing the live set across single puts.
  const std::string dir = fresh_dir("evict_cost_invariant");
  store::ArtifactStore s(dir, policy_of(store::EvictionPolicy::kCostAware, 8000));
  s.open();
  s.begin_stage("features", test_pricer());

  Rng rng(0xdeadULL);
  std::map<store::ArtifactKey, double> density;
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t bytes = 400 + rng.next_u64() % 3000;
    const double cost_s = 1.0 + static_cast<double>(rng.next_u64() % 9000);
    const auto key = key_of(1000 + i);
    const auto before = live_keys(s);
    s.put(key, "k" + std::to_string(i), "p" + std::to_string(i),
          static_cast<double>(bytes), cost_s);
    density[key] = cost_s / static_cast<double>(bytes);
    const auto after_vec = live_keys(s);
    const std::set<store::ArtifactKey> after(after_vec.begin(), after_vec.end());
    double max_evicted = -1.0;
    for (const auto& k : before) {
      if (!after.count(k)) max_evicted = std::max(max_evicted, density.at(k));
    }
    if (max_evicted < 0.0) continue;  // no eviction this step
    for (const auto& k : after) {
      if (k == key) continue;  // the fresh put is exempt from ranking
      EXPECT_GE(density.at(k), max_evicted) << "step " << i;
    }
  }
  EXPECT_GT(s.total_stats().evictions, 0u);
}

// ------------------------------------------------------------------ //
// Durability: decisions survive reopen + compaction; FIFO manifests
// stay pure v1.
// ------------------------------------------------------------------ //

// Runs the same seeded traffic, optionally closing/reopening the store
// (forcing manifest compaction) every `reopen_every` steps. Returns the
// final compacted manifest image.
std::string traffic_image(store::EvictionPolicy ep, const std::string& tag, int reopen_every) {
  const std::string dir = fresh_dir("evict_reopen_" + tag);
  auto make = [&] {
    auto s = std::make_unique<store::ArtifactStore>(dir, policy_of(ep, 5000));
    s->open();
    s->begin_stage("features", test_pricer());
    return s;
  };
  auto s = make();
  Rng rng(0xfadeULL, static_cast<std::uint64_t>(ep) + 1);
  for (int step = 0; step < 80; ++step) {
    if (reopen_every > 0 && step > 0 && step % reopen_every == 0) s = make();
    const int key = static_cast<int>(rng.next_u64() % 14);
    if (rng.next_u64() % 3 == 0) {
      (void)s->get(key_of(key));
    } else if (!s->contains(key_of(key))) {
      s->put(key_of(key), "k" + std::to_string(key), "payload" + std::to_string(step),
             static_cast<double>(600 + rng.next_u64() % 1800),
             1.0 + static_cast<double>(rng.next_u64() % 4000));
    }
  }
  s.reset();
  // Reopen once more so the on-disk bytes are the canonical compacted
  // image on both sides of the comparison.
  store::ArtifactStore fin(dir, policy_of(ep, 5000));
  fin.open();
  return read_file(dir + "/manifest.sfstore");
}

TEST(EvictionDurability, DecisionsIdenticalAcrossReopenAndCompaction) {
  using store::EvictionPolicy;
  for (const EvictionPolicy ep :
       {EvictionPolicy::kFifo, EvictionPolicy::kLru, EvictionPolicy::kCostAware}) {
    SCOPED_TRACE(store::eviction_policy_name(ep));
    const std::string tag = store::eviction_policy_name(ep);
    const std::string uninterrupted = traffic_image(ep, tag + "_solid", 0);
    const std::string chopped = traffic_image(ep, tag + "_chop", 7);
    EXPECT_FALSE(uninterrupted.empty());
    // Compaction preserves seq, recency ticks, and recompute costs, so a
    // store that restarted every few steps made the exact same eviction
    // decisions -- down to the manifest bytes.
    EXPECT_EQ(uninterrupted, chopped);
  }
}

TEST(EvictionManifest, FifoStaysPureV1AndOthersAnnotateMinimally) {
  using store::EvictionPolicy;
  struct Case {
    EvictionPolicy ep;
    bool expect_touch;
    bool expect_cost;
  };
  for (const Case c : {Case{EvictionPolicy::kFifo, false, false},
                       Case{EvictionPolicy::kLru, true, false},
                       Case{EvictionPolicy::kCostAware, false, true}}) {
    SCOPED_TRACE(store::eviction_policy_name(c.ep));
    const std::string dir =
        fresh_dir(std::string("evict_manifest_") + store::eviction_policy_name(c.ep));
    {
      store::ArtifactStore s(dir, policy_of(c.ep, 4000));
      s.open();
      s.begin_stage("features", test_pricer());
      for (int i = 0; i < 6; ++i) {
        s.put(key_of(i), "k" + std::to_string(i), "payload" + std::to_string(i), 1000.0,
              50.0 * (i + 1));
        (void)s.get(key_of(i / 2));
      }
    }
    const std::string raw = read_file(dir + "/manifest.sfstore");
    ASSERT_NE(raw.find("sfstore v1"), std::string::npos);
    EXPECT_EQ(raw.find("\ntouch ") != std::string::npos, c.expect_touch);
    EXPECT_EQ(raw.find("\ncost ") != std::string::npos, c.expect_cost);
    // And the compacted image keeps the same purity.
    store::ArtifactStore reopened(dir, policy_of(c.ep, 4000));
    reopened.open();
    const std::string compacted = read_file(dir + "/manifest.sfstore");
    EXPECT_EQ(compacted.find("\ntouch ") != std::string::npos, c.expect_touch);
    EXPECT_EQ(compacted.find("\ncost ") != std::string::npos, c.expect_cost);
  }
}

}  // namespace
}  // namespace sf
