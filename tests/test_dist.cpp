// src/dist: the distributed executor's contract, held from three sides.
//
//  * The interconnect model is a pure function: latencies depend only on
//    (seed, topology, endpoints, payload), never on delivery order.
//  * StoreReplica is a bit-exact shadow of store::ArtifactStore's
//    placement bookkeeping: the same traffic produces the same resident
//    set and the same eviction count under every policy (the coherence
//    shadow-oracle).
//  * DistributedExecutor is observability, never science: MapResult is
//    field-for-field equal to SimulatedExecutor under retries, faults,
//    and alt-pool reroutes; campaign stdout is byte-identical at any
//    node count, under node crashes, and under every routing policy --
//    while the cluster's own counters show the distribution actually
//    happened (migrations, invalidations, reroutes, crashes).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pair_campaign.hpp"
#include "core/stage_context.hpp"
#include "dataflow/executor.hpp"
#include "dist/executor.hpp"
#include "dist/replica.hpp"
#include "sim/network.hpp"
#include "store/artifact_store.hpp"
#include "store/key.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

// ------------------------------------------------------------------ //
// sim/network: deterministic interconnect pricing.
// ------------------------------------------------------------------ //

TEST(DistNetwork, FatTreeHopsFollowPodStructure) {
  NetworkModel net;
  net.pod_size = 4;
  // Self-sends never touch the fabric.
  EXPECT_EQ(net.hops(3, 3, 16), 0);
  // Same pod: leaf switch round trip.
  EXPECT_EQ(net.hops(0, 3, 16), 2);
  EXPECT_EQ(net.hops(5, 6, 16), 2);
  // Cross pod: up through the spine and back down.
  EXPECT_EQ(net.hops(0, 4, 16), 4);
  EXPECT_EQ(net.hops(1, 15, 16), 4);
}

TEST(DistNetwork, RingHopsAreWrapDistance) {
  NetworkModel net;
  net.topology = Topology::kRing;
  EXPECT_EQ(net.hops(2, 2, 8), 0);
  EXPECT_EQ(net.hops(0, 1, 8), 1);
  EXPECT_EQ(net.hops(0, 7, 8), 1);  // wraps the short way
  EXPECT_EQ(net.hops(0, 4, 8), 4);  // antipode
  EXPECT_EQ(net.hops(6, 1, 8), 3);
}

TEST(DistNetwork, MessageSecondsIsPureMonotonicAndSeeded) {
  NetworkModel net;
  net.seed = 42;
  const double a = net.message_seconds(0, 3, 16, 1e6);
  // Pure: same arguments, same bits, however often it is asked.
  EXPECT_EQ(a, net.message_seconds(0, 3, 16, 1e6));
  // More payload costs strictly more wire time.
  EXPECT_LT(a, net.message_seconds(0, 3, 16, 2e6));
  // More hops cost more latency (same payload, same jitter bounds).
  EXPECT_LT(net.message_seconds(0, 0, 16, 0.0), net.message_seconds(0, 1, 16, 0.0));
  // The seed reshuffles the adaptive-routing jitter.
  NetworkModel other = net;
  other.seed = 43;
  EXPECT_NE(a, other.message_seconds(0, 3, 16, 1e6));
}

// ------------------------------------------------------------------ //
// StoreReplica: the coherence shadow-oracle against ArtifactStore.
// ------------------------------------------------------------------ //

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Drive the real store and the replica with an identical seeded traffic
// stream under tight capacity and demand bit-equal placement after
// every operation. Any divergence in eviction order, recency gating, or
// re-insert handling shows up as a resident-set mismatch.
TEST(DistReplica, ShadowsArtifactStorePlacementUnderEveryPolicy) {
  constexpr std::size_t kKeys = 12;
  constexpr int kOps = 400;
  std::vector<store::ArtifactKey> keys;
  std::vector<double> bytes, cost;
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys.push_back(store::artifact_key(0x9000 + i, "features", 5));
    bytes.push_back(1000.0 * static_cast<double>(1 + i % 5));
    cost.push_back(0.5 * static_cast<double>(i % 7));
  }

  for (const store::EvictionPolicy ep :
       {store::EvictionPolicy::kFifo, store::EvictionPolicy::kLru,
        store::EvictionPolicy::kCostAware}) {
    SCOPED_TRACE(store::eviction_policy_name(ep));
    store::StorePolicy sp;
    sp.eviction = ep;
    sp.capacity_bytes = 6000;  // a handful of entries: constant pressure
    store::ArtifactStore store(fresh_dir(std::string("dist_shadow_") +
                                         store::eviction_policy_name(ep)),
                               sp);
    store.open();
    store.begin_stage("shadow", {});
    dist::StoreReplica replica;
    replica.configure(sp.capacity_bytes, ep);

    std::uint64_t replica_evictions = 0;
    for (int op = 0; op < kOps; ++op) {
      const std::size_t k =
          static_cast<std::size_t>(mix64(1234, static_cast<std::uint64_t>(op))) % kKeys;
      const bool rewrite = op % 7 == 3;  // exercise re-insert seq refresh
      const bool store_had = store.get(keys[k]).has_value();
      EXPECT_EQ(store_had, replica.contains(keys[k])) << "op " << op;
      if (store_had) replica.touch(keys[k]);
      if (!store_had || rewrite) {
        store.put(keys[k], "shadow", "x", bytes[k], cost[k]);
        replica_evictions += replica.insert(keys[k], bytes[k], cost[k]).size();
      }
      ASSERT_EQ(store.size(), replica.size()) << "op " << op;
      for (std::size_t j = 0; j < kKeys; ++j) {
        ASSERT_EQ(store.contains(keys[j]), replica.contains(keys[j]))
            << "op " << op << " key " << j;
      }
    }
    // Same victims, op for op, means the same lifetime eviction count.
    EXPECT_EQ(store.total_stats().evictions, replica_evictions);
    EXPECT_GT(replica_evictions, 0u);
  }
}

// ------------------------------------------------------------------ //
// DistributedExecutor vs SimulatedExecutor: MapResult equality.
// ------------------------------------------------------------------ //

void expect_run_eq(const DataflowRunResult& a, const DataflowRunResult& b) {
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.first_task_start_s, b.first_task_start_s);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].task_id, b.records[i].task_id);
    EXPECT_EQ(a.records[i].name, b.records[i].name);
    EXPECT_EQ(a.records[i].worker, b.records[i].worker);
    EXPECT_EQ(a.records[i].start_s, b.records[i].start_s);
    EXPECT_EQ(a.records[i].end_s, b.records[i].end_s);
  }
  EXPECT_EQ(a.worker_busy_s, b.worker_busy_s);
  EXPECT_EQ(a.worker_finish_s, b.worker_finish_s);
  EXPECT_EQ(a.worker_task_count, b.worker_task_count);
}

void expect_map_eq(const MapResult& a, const MapResult& b) {
  expect_run_eq(a.primary, b.primary);
  ASSERT_EQ(a.retries.size(), b.retries.size());
  for (std::size_t r = 0; r < a.retries.size(); ++r) {
    SCOPED_TRACE("retry round " + std::to_string(r));
    EXPECT_EQ(a.retries[r].attempt, b.retries[r].attempt);
    EXPECT_EQ(a.retries[r].alt_pool, b.retries[r].alt_pool);
    EXPECT_EQ(a.retries[r].tasks, b.retries[r].tasks);
    EXPECT_EQ(a.retries[r].backoff_s, b.retries[r].backoff_s);
    expect_run_eq(a.retries[r].run, b.retries[r].run);
  }
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.rerouted_tasks, b.rerouted_tasks);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.faults.crash_attempts, b.faults.crash_attempts);
  EXPECT_EQ(a.faults.transient_attempts, b.faults.transient_attempts);
  EXPECT_EQ(a.faults.oom_attempts, b.faults.oom_attempts);
  EXPECT_EQ(a.faults.intrinsic_failures, b.faults.intrinsic_failures);
  EXPECT_EQ(a.faults.straggler_attempts, b.faults.straggler_attempts);
  EXPECT_EQ(a.faults.stalled_attempts, b.faults.stalled_attempts);
  EXPECT_EQ(a.faults.workers_lost, b.faults.workers_lost);
  EXPECT_EQ(a.faults.lost_work_s, b.faults.lost_work_s);
  EXPECT_EQ(a.faults.backoff_delay_s, b.faults.backoff_delay_s);
  EXPECT_EQ(a.wall_s(), b.wall_s());
}

std::vector<TaskSpec> synthetic_tasks(int n) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<std::uint64_t>(i);
    t.name = "task-" + std::to_string(i);
    t.cost_hint = 50.0 + static_cast<double>(mix64(7, static_cast<std::uint64_t>(i)) % 400);
    t.payload = static_cast<std::size_t>(i);
    tasks.push_back(t);
  }
  return tasks;
}

TaskFn synthetic_fn() {
  return [](const TaskSpec& t, const TaskAttempt& attempt) {
    TaskOutcome out;
    // A few tasks fail intrinsically on their first try, so retry rounds
    // exist even without an injector.
    out.ok = !(t.id % 11 == 4 && attempt.attempt == 0);
    out.sim_duration_s =
        10.0 + static_cast<double>(mix64(99, t.id + 1) % 1000) / 10.0;
    if (attempt.alt_pool) out.sim_duration_s *= 1.5;
    return out;
  };
}

TEST(DistExecutor, MapResultMatchesSimulatedAcrossTheGrid) {
  SimulatedDataflowParams base;
  base.dispatch_overhead_s = 0.1;
  base.startup_s = 30.0;
  const WorkerPool primary{"summit-gpu", 3, 6, 1.0};
  const WorkerPool alt{"summit-highmem", 1, 2, 0.9};
  const auto tasks = synthetic_tasks(60);
  const TaskFn fn = synthetic_fn();

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.reroute_to_alt_pool = true;
  retry.retry_cost_scale = 1.25;
  retry.backoff_base_s = 5.0;

  FaultPlan plan;
  plan.seed = 71;
  plan.crash_rate = 0.05;
  plan.transient_rate = 0.08;
  plan.oom_rate = 0.04;
  plan.straggler_rate = 0.1;
  plan.fs_stall_rate = 0.05;
  const FaultInjector injector(plan);

  for (const int nodes : {1, 4, 16}) {
    SCOPED_TRACE("nodes " + std::to_string(nodes));
    // Plain map, no faults.
    {
      SimulatedExecutor sim = SimulatedExecutor::from_pools(base, primary);
      dist::DistConfig dc;
      dc.nodes = nodes;
      dist::DistCluster cluster(dc);
      dist::DistributedExecutor dx = dist::DistributedExecutor::from_pools(&cluster, base, primary);
      expect_map_eq(sim.map(tasks, fn), dx.map(tasks, fn));
      EXPECT_EQ(cluster.totals().tasks, static_cast<int>(tasks.size()));
    }
    // Retries + alt-pool reroute + injected faults, with a locality
    // provider installed: the full grid, still bit-equal.
    {
      SimulatedExecutor sim = SimulatedExecutor::from_pools(base, primary, alt);
      dist::DistConfig dc;
      dc.nodes = nodes;
      dc.seed = 5;
      dc.network.seed = 5;
      dist::DistCluster cluster(dc);
      dist::DistributedExecutor dx =
          dist::DistributedExecutor::from_pools(&cluster, base, primary, alt);
      dx.set_locality([](const TaskSpec& t) {
        dist::TaskLocality loc;
        // Tasks cluster around a handful of shared inputs.
        loc.needs.push_back({store::artifact_key(t.id % 5, "features", 1), 5e5, 100.0});
        loc.produces.push_back({store::artifact_key(t.id, "structure", 1), 2e5, 50.0});
        return loc;
      });
      const MapResult want = sim.map(tasks, fn, retry, &injector);
      const MapResult got = dx.map(tasks, fn, retry, &injector);
      expect_map_eq(want, got);
      EXPECT_GT(got.retry_attempts, 0);
      EXPECT_GT(got.rerouted_tasks, 0);
      // The distributed pass really ran: every first-attempt task was
      // routed, and multi-node runs moved or reused artifacts.
      EXPECT_GE(cluster.totals().tasks, static_cast<int>(tasks.size()));
      if (nodes > 1) {
        EXPECT_GT(cluster.totals().local_hits + cluster.totals().migrations, 0u);
      }
    }
  }
}

// ------------------------------------------------------------------ //
// Campaign-level byte-identity, crashes, and routing economics.
// ------------------------------------------------------------------ //

std::vector<ProteinRecord> sample_records(int n) {
  FoldUniverse universe(40, 31);
  return ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(n);
}

PipelineConfig chaos_cfg() {
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 2;
  cfg.jobs_per_replica = 2;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  cfg.faults.seed = 77;
  cfg.faults.crash_rate = 0.06;
  cfg.faults.transient_rate = 0.08;
  cfg.faults.oom_rate = 0.05;
  cfg.faults.straggler_rate = 0.1;
  return cfg;
}

std::string render(const PairCampaignReport& r) {
  std::ostringstream ss;
  print_pair_campaign(ss, r);
  return ss.str();
}

std::string run_dist(const PairCampaign& campaign, const std::vector<ProteinRecord>& records,
                     dist::DistCluster& cluster) {
  const std::unique_ptr<Executor> feat =
      make_stage_executor_dist(cluster, campaign.config(), StageKind::kFeatures);
  const std::unique_ptr<Executor> pair =
      make_stage_executor_dist(cluster, campaign.config(), StageKind::kInference);
  return render(campaign.run(records, nullptr, nullptr, nullptr, feat.get(), pair.get()));
}

TEST(DistCampaign, StdoutByteIdenticalAcrossNodeCountsUnderChaos) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PairCampaign campaign(universe, chaos_cfg());
  const std::string golden = render(campaign.run(records));

  for (const int nodes : {1, 4, 16}) {
    SCOPED_TRACE("nodes " + std::to_string(nodes));
    dist::DistConfig dc;
    dc.nodes = nodes;
    dist::DistCluster cluster(dc);
    EXPECT_EQ(golden, run_dist(campaign, records, cluster));
    // Stage drivers opened one stats window per stage.
    ASSERT_EQ(cluster.windows().size(), 2u);
    EXPECT_EQ(cluster.windows()[0].first, "pair-features");
    EXPECT_EQ(cluster.windows()[1].first, "pair-inference");
    EXPECT_GT(cluster.totals().tasks, 0);
    if (nodes > 1) {
      // Pair tasks need two chains' features: some must cross nodes.
      EXPECT_GT(cluster.totals().migrations, 0u);
      EXPECT_GT(cluster.totals().invalidations + cluster.totals().local_hits, 0u);
    } else {
      EXPECT_EQ(cluster.totals().migrations, 0u);
    }
  }
}

TEST(DistCampaign, NodeCrashesRerouteWorkWithoutTouchingTheScience) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(8);
  const PairCampaign campaign(universe, chaos_cfg());
  const std::string golden = render(campaign.run(records));

  dist::DistConfig dc;
  dc.nodes = 4;
  dc.node_crash_rate = 0.3;
  dist::DistCluster cluster(dc);
  EXPECT_EQ(golden, run_dist(campaign, records, cluster));
  const dist::WindowStats t = cluster.totals();
  EXPECT_GT(t.node_crashes, 0);
  EXPECT_GT(t.tasks_rerouted, 0);
  // A crashed node loses its replica; some later fetch had to migrate
  // or recompute what it held.
  EXPECT_GT(t.migrations + t.recomputes, 0u);
  int crash_total = 0;
  for (const dist::NodeStats& ns : cluster.node_stats()) crash_total += ns.crashes;
  EXPECT_EQ(crash_total, t.node_crashes);
}

TEST(DistCampaign, LocalityRoutingMigratesNoMoreThanRandom) {
  FoldUniverse universe(40, 31);
  const auto records = sample_records(10);
  PipelineConfig cfg = chaos_cfg();
  cfg.faults = {};  // economics comparison, no fault noise needed
  const PairCampaign campaign(universe, cfg);

  std::map<dist::RoutingPolicy, dist::WindowStats> totals;
  std::string golden;
  for (const dist::RoutingPolicy routing :
       {dist::RoutingPolicy::kLocality, dist::RoutingPolicy::kRandom,
        dist::RoutingPolicy::kRoundRobin}) {
    dist::DistConfig dc;
    dc.nodes = 4;
    dc.routing = routing;
    dist::DistCluster cluster(dc);
    const std::string out = run_dist(campaign, records, cluster);
    if (golden.empty()) golden = out;
    EXPECT_EQ(golden, out) << dist::routing_policy_name(routing);
    totals[routing] = cluster.totals();
  }
  const dist::WindowStats& loc = totals[dist::RoutingPolicy::kLocality];
  const dist::WindowStats& rnd = totals[dist::RoutingPolicy::kRandom];
  EXPECT_LE(loc.bytes_migrated, rnd.bytes_migrated);
  EXPECT_GE(loc.local_hits, rnd.local_hits);
  EXPECT_GT(loc.local_hits, 0u);
}

}  // namespace
}  // namespace sf
