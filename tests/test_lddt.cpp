#include "score/lddt.hpp"

#include <gtest/gtest.h>

#include "geom/backbone.hpp"
#include "geom/kabsch.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<Vec3> trace(int n, unsigned seed = 5) {
  Rng rng(seed);
  std::string ss;
  for (int k = 0; k < n; ++k) ss += (k / 12) % 2 ? 'H' : 'C';
  return build_ca_trace(ss, rng);
}

TEST(Lddt, SelfIsHundred) {
  const auto ca = trace(60);
  const LddtResult r = lddt(ca, ca);
  EXPECT_NEAR(r.global, 100.0, 1e-9);
  for (double v : r.per_residue) EXPECT_NEAR(v, 100.0, 1e-9);
}

TEST(Lddt, SuperpositionFree) {
  const auto ca = trace(60);
  const Mat3 rot = rotation_about_axis(Vec3{0, 1, 1}.normalized(), 2.0);
  std::vector<Vec3> moved;
  for (const auto& p : ca) moved.push_back(rot * p + Vec3{100, 0, 0});
  EXPECT_NEAR(lddt(moved, ca).global, 100.0, 1e-9);
}

TEST(Lddt, MonotoneUnderLocalNoise) {
  const auto ca = trace(100);
  double prev = 101.0;
  for (double sigma : {0.2, 0.8, 2.0, 5.0}) {
    Rng noise(7);
    auto noisy = ca;
    for (auto& p : noisy) {
      p += Vec3{noise.normal(0, sigma), noise.normal(0, sigma), noise.normal(0, sigma)};
    }
    const double v = lddt(noisy, ca).global;
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Lddt, RigidDomainMotionPreservesLocalScore) {
  // Displace the second half rigidly: intra-half distances intact, only
  // cross-half pairs within the inclusion radius suffer.
  const auto ca = trace(80);
  auto model = ca;
  for (std::size_t i = 40; i < model.size(); ++i) model[i] += Vec3{30, 0, 0};
  const double v = lddt(model, ca).global;
  EXPECT_GT(v, 60.0);  // far higher than uncorrelated noise of that scale
}

TEST(Lddt, PerResidueLocalization) {
  const auto ca = trace(60);
  auto model = ca;
  model[30] += Vec3{6, 6, 6};  // wreck one residue
  const LddtResult r = lddt(model, ca);
  // The wrecked residue scores much worse than a distant one.
  EXPECT_LT(r.per_residue[30], r.per_residue[5] - 20.0);
}

TEST(Lddt, MismatchThrows) {
  EXPECT_THROW(lddt(trace(10), trace(12)), std::invalid_argument);
}

TEST(Lddt, EmptyIsSafe) {
  const LddtResult r = lddt(std::vector<Vec3>{}, std::vector<Vec3>{});
  EXPECT_EQ(r.global, 0.0);
}

}  // namespace
}  // namespace sf
