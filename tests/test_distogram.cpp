#include "geom/distogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sf {
namespace {

std::vector<Vec3> line(std::size_t n, double spacing) {
  std::vector<Vec3> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back({spacing * static_cast<double>(i), 0, 0});
  return pts;
}

TEST(Distogram, BinMapping) {
  EXPECT_EQ(Distogram::distance_to_bin(0.0), 0);  // below range clamps
  EXPECT_EQ(Distogram::distance_to_bin(Distogram::kMinDist), 0);
  EXPECT_EQ(Distogram::distance_to_bin(100.0), Distogram::kBins - 1);
  // Monotone.
  EXPECT_LE(Distogram::distance_to_bin(5.0), Distogram::distance_to_bin(6.0));
}

TEST(Distogram, IdenticalStructuresHaveZeroChange) {
  const auto pts = line(30, 3.8);
  Distogram a(pts), b(pts);
  EXPECT_DOUBLE_EQ(a.mean_abs_change(b), 0.0);
}

TEST(Distogram, ChangeScalesWithPerturbation) {
  Rng rng(3);
  const auto pts = line(40, 3.8);
  auto small = pts;
  auto big = pts;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    small[i] += Vec3{rng.normal(0, 0.3), rng.normal(0, 0.3), rng.normal(0, 0.3)};
    big[i] += Vec3{rng.normal(0, 2.0), rng.normal(0, 2.0), rng.normal(0, 2.0)};
  }
  const Distogram base(pts);
  EXPECT_LT(base.mean_abs_change(Distogram(small)), base.mean_abs_change(Distogram(big)));
}

TEST(Distogram, ChangeIsSymmetric) {
  Rng rng(5);
  const auto a = line(25, 3.8);
  auto b = a;
  for (auto& p : b) p += Vec3{rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)};
  Distogram da(a), db(b);
  EXPECT_DOUBLE_EQ(da.mean_abs_change(db), db.mean_abs_change(da));
}

TEST(Distogram, MismatchedSizesThrow) {
  Distogram a(line(10, 3.8)), b(line(11, 3.8));
  EXPECT_THROW(a.mean_abs_change(b), std::invalid_argument);
}

TEST(Distogram, TinyStructures) {
  Distogram a{std::vector<Vec3>{}}, b{std::vector<Vec3>{{0, 0, 0}}};
  EXPECT_EQ(a.num_residues(), 0u);
  EXPECT_DOUBLE_EQ(b.mean_abs_change(Distogram{std::vector<Vec3>{{1, 0, 0}}}), 0.0);
}

TEST(Distogram, ContactFraction) {
  // A straight extended line has no nonlocal contacts.
  const Distogram extended(line(50, 3.8));
  EXPECT_LT(extended.contact_order_fraction(), 0.08);
  // A tight cluster has all pairs in contact.
  std::vector<Vec3> clump(20, Vec3{0, 0, 0});
  for (std::size_t i = 0; i < clump.size(); ++i) clump[i].x = 0.1 * static_cast<double>(i);
  EXPECT_GT(Distogram(clump).contact_order_fraction(), 0.95);
}

}  // namespace
}  // namespace sf
