// Each stage driver is independently constructible: given a
// StageContext it runs standalone on either backend, returning its
// StageReport plus typed artifacts.
#include <gtest/gtest.h>

#include "core/stage_features.hpp"
#include "core/stage_inference.hpp"
#include "core/stage_relax.hpp"

namespace sf {
namespace {

struct StageWorld {
  FoldUniverse universe{40, 31};
  std::vector<ProteinRecord> records;
  PipelineConfig cfg;

  StageWorld() {
    records = ProteomeGenerator(universe, species_d_vulgaris(), 12).generate(40);
    cfg.summit_nodes = 2;
    cfg.andes_nodes = 4;
    cfg.relax_nodes = 1;
    cfg.db_replicas = 4;
    cfg.jobs_per_replica = 2;
    cfg.quality_sample = 12;
    cfg.relax_sample = 4;
  }
};

TEST(StageDrivers, FeatureStageStandalone) {
  StageWorld w;
  SimulatedExecutor exec = make_stage_executor(w.cfg, StageKind::kFeatures);
  const FeatureStageResult res = FeatureStage().run({w.universe, w.cfg, w.records, exec});
  ASSERT_EQ(res.features.size(), w.records.size());
  for (std::size_t i = 0; i < res.features.size(); ++i) {
    EXPECT_EQ(res.features[i].target_id, w.records[i].sequence.id());
    EXPECT_GE(res.features[i].msa_depth, 0);
  }
  EXPECT_EQ(res.report.name, "features");
  EXPECT_EQ(res.report.tasks, 40);
  EXPECT_EQ(res.report.failed_tasks, 0);
  EXPECT_GT(res.report.wall_s, 0.0);
  EXPECT_GT(res.report.node_hours, 0.0);
}

TEST(StageDrivers, FeatureStageRunsOnEitherBackend) {
  // The same driver on the threaded backend really computes the
  // features, concurrently, with identical artifacts.
  StageWorld w;
  SimulatedExecutor sim = make_stage_executor(w.cfg, StageKind::kFeatures);
  ThreadedExecutor threaded(4);
  const FeatureStageResult a = FeatureStage().run({w.universe, w.cfg, w.records, sim});
  const FeatureStageResult b = FeatureStage().run({w.universe, w.cfg, w.records, threaded});
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_EQ(a.features[i].msa_depth, b.features[i].msa_depth);
    EXPECT_DOUBLE_EQ(a.features[i].neff, b.features[i].neff);
    EXPECT_EQ(a.features[i].has_templates, b.features[i].has_templates);
  }
  EXPECT_EQ(b.report.failed_tasks, 0);
}

TEST(StageDrivers, InferenceStageStandalone) {
  StageWorld w;
  SimulatedExecutor feat_exec = make_stage_executor(w.cfg, StageKind::kFeatures);
  const FeatureStageResult feats = FeatureStage().run({w.universe, w.cfg, w.records, feat_exec});

  SimulatedExecutor exec = make_stage_executor(w.cfg, StageKind::kInference);
  const InferenceStageResult res =
      InferenceStage().run({w.universe, w.cfg, w.records, exec}, feats.features);
  EXPECT_EQ(res.report.name, "inference");
  EXPECT_EQ(res.report.tasks, 40 * 5);
  EXPECT_EQ(res.targets.size(), 40u);
  EXPECT_EQ(res.task_records.size(), 200u);
  EXPECT_EQ(res.plddt.count(), 12u);  // quality sample
  EXPECT_EQ(res.kept_for_relax.size(), 4u);
  int measured = 0;
  for (const auto& t : res.targets) measured += t.measured ? 1 : 0;
  EXPECT_EQ(measured, 12);
}

TEST(StageDrivers, RelaxStageStandalone) {
  StageWorld w;
  SimulatedExecutor feat_exec = make_stage_executor(w.cfg, StageKind::kFeatures);
  const FeatureStageResult feats = FeatureStage().run({w.universe, w.cfg, w.records, feat_exec});
  SimulatedExecutor inf_exec = make_stage_executor(w.cfg, StageKind::kInference);
  InferenceStageResult inf =
      InferenceStage().run({w.universe, w.cfg, w.records, inf_exec}, feats.features);

  SimulatedExecutor exec = make_stage_executor(w.cfg, StageKind::kRelaxation);
  const RelaxStageResult res = RelaxStage().run({w.universe, w.cfg, w.records, exec},
                                                inf.kept_for_relax, inf.targets);
  EXPECT_EQ(res.report.name, "relaxation");
  EXPECT_EQ(res.report.tasks, 40);  // no OOM drops in this world
  EXPECT_EQ(res.report.failed_tasks, 0);
  EXPECT_GT(res.report.wall_s, 0.0);
  int relaxed = 0;
  for (const auto& t : inf.targets) {
    if (!t.relaxed) continue;
    ++relaxed;
    EXPECT_EQ(t.clashes_after, 0u);
  }
  EXPECT_EQ(relaxed, 4);  // relax_sample
}

}  // namespace
}  // namespace sf
