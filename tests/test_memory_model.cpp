#include "fold/memory_model.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(MemoryModel, MonotoneInLengthAndEnsembles) {
  EXPECT_LT(inference_memory_gb(100, 1), inference_memory_gb(500, 1));
  EXPECT_LT(inference_memory_gb(500, 1), inference_memory_gb(500, 8));
}

TEST(MemoryModel, BenchmarkSequencesFitSingleEnsemble) {
  // The 559-sequence benchmark (max 1266 AA) ran fully under reduced_db/
  // genome/super: all lengths must fit a standard node at 1 ensemble.
  for (int len : {29, 202, 559, 1000, 1266}) {
    EXPECT_TRUE(fits_standard_node(len, 1)) << len;
  }
}

TEST(MemoryModel, Casp14OomsOnLongSequences) {
  // §4.2: the 8 longest sequences of the 559 set failed with casp14's 8
  // ensembles. The longest must OOM; short ones must not.
  EXPECT_FALSE(fits_standard_node(1266, 8));
  EXPECT_FALSE(fits_standard_node(1000, 8));
  EXPECT_TRUE(fits_standard_node(300, 8));
}

TEST(MemoryModel, VeryLongSequencesNeedHighMemoryNodes) {
  // §3.3: "Some of the proteins are too large to fit onto the memory of a
  // standard Summit node" -- at 1 ensemble there is a length beyond which
  // only high-memory nodes work, but the 2500 AA study cutoff still fits
  // the high-memory class.
  bool found_highmem_only = false;
  for (int len = 1000; len <= 2500; len += 100) {
    if (!fits_standard_node(len, 1) && fits_highmem_node(len, 1)) found_highmem_only = true;
  }
  EXPECT_TRUE(found_highmem_only);
  EXPECT_TRUE(fits_highmem_node(2500, 1));
}

TEST(MemoryModel, BaseCostPositive) {
  EXPECT_GT(inference_memory_gb(1, 1), 0.5);
}

}  // namespace
}  // namespace sf
