#include <gtest/gtest.h>

#include "bio/proteome.hpp"
#include "bio/species.hpp"
#include "native/render.hpp"
#include "score/tm_score.hpp"

namespace sf {
namespace {

TEST(Species, PaperCounts) {
  EXPECT_EQ(species_p_mercurii().proteome_size, 3446);
  EXPECT_EQ(species_r_rubrum().proteome_size, 3849);
  EXPECT_EQ(species_d_vulgaris().proteome_size, 3205);
  EXPECT_EQ(species_s_divinum().proteome_size, 25134);
  EXPECT_EQ(benchmark_559_profile().proteome_size, 559);
  EXPECT_EQ(paper_species().size(), 4u);
  // Abstract: 35,634 sequences total across the four species.
  int total = 0;
  for (const auto& sp : paper_species()) total += sp.proteome_size;
  EXPECT_EQ(total, 35634);
}

TEST(Proteome, GeneratesRequestedCount) {
  FoldUniverse universe(60, 1);
  ProteomeGenerator gen(universe, benchmark_559_profile(), 7);
  EXPECT_EQ(gen.generate(25).size(), 25u);
  EXPECT_EQ(gen.generate().size(), 559u);
}

TEST(Proteome, DeterministicForSameSeed) {
  FoldUniverse universe(60, 1);
  ProteomeGenerator g1(universe, species_d_vulgaris(), 7);
  ProteomeGenerator g2(universe, species_d_vulgaris(), 7);
  const auto a = g1.generate(40);
  const auto b = g2.generate(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence.residues(), b[i].sequence.residues());
    EXPECT_EQ(a[i].fold_index, b[i].fold_index);
    EXPECT_DOUBLE_EQ(a[i].hardness, b[i].hardness);
  }
}

TEST(Proteome, DifferentSeedsDiffer) {
  FoldUniverse universe(60, 1);
  const auto a = ProteomeGenerator(universe, species_d_vulgaris(), 7).generate(10);
  const auto b = ProteomeGenerator(universe, species_d_vulgaris(), 8).generate(10);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].sequence.residues() == b[i].sequence.residues()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Proteome, LengthDistributionMatchesProfile) {
  FoldUniverse universe(80, 2);
  const auto profile = benchmark_559_profile();
  const auto records = ProteomeGenerator(universe, profile, 2022).generate();
  const auto stats = summarize_proteome(records);
  // §4.2: lengths 29-1266, mean 202.
  EXPECT_GE(stats.min_length, profile.length_min);
  EXPECT_LE(stats.max_length, profile.length_max);
  EXPECT_NEAR(stats.mean_length, 202.0, 30.0);
}

TEST(Proteome, HypotheticalFractionRoughlyMatches) {
  FoldUniverse universe(60, 3);
  auto profile = species_d_vulgaris();
  const auto records = ProteomeGenerator(universe, profile, 5).generate(1500);
  const auto stats = summarize_proteome(records);
  EXPECT_NEAR(static_cast<double>(stats.hypothetical) / stats.count,
              profile.hypothetical_fraction, 0.05);
  // Annotations present iff not hypothetical.
  for (const auto& r : records) {
    EXPECT_EQ(r.annotation.empty(), r.hypothetical);
  }
}

TEST(Proteome, HardnessAntiCorrelatesWithFamilySize) {
  FoldUniverse universe(100, 4);
  const auto records = ProteomeGenerator(universe, species_s_divinum(), 5).generate(800);
  double hard_small = 0.0, hard_big = 0.0;
  int n_small = 0, n_big = 0;
  for (const auto& r : records) {
    if (r.family_size < 100) {
      hard_small += r.hardness;
      ++n_small;
    } else if (r.family_size > 1000) {
      hard_big += r.hardness;
      ++n_big;
    }
  }
  ASSERT_GT(n_small, 5);
  ASSERT_GT(n_big, 5);
  EXPECT_GT(hard_small / n_small, hard_big / n_big);
}

TEST(Proteome, NativeBuildIsDeterministicAndSized) {
  FoldUniverse universe(60, 1);
  ProteomeGenerator gen(universe, species_d_vulgaris(), 7);
  const auto records = gen.generate(3);
  const Structure s1 = build_native_structure(gen.universe(), records[1]);
  const Structure s2 = build_native_structure(universe, records[1]);
  ASSERT_EQ(s1.size(), records[1].sequence.length());
  EXPECT_NEAR(tm_score(s1, s2).tm_score, 1.0, 1e-9);
}

TEST(Proteome, EukaryoteHarderThanProkaryote) {
  FoldUniverse universe(100, 4);
  const auto pro = ProteomeGenerator(universe, species_d_vulgaris(), 5).generate(600);
  const auto euk = ProteomeGenerator(universe, species_s_divinum(), 5).generate(600);
  double hp = 0.0, he = 0.0;
  for (const auto& r : pro) hp += r.hardness;
  for (const auto& r : euk) he += r.hardness;
  EXPECT_GT(he / 600.0, hp / 600.0);
}

TEST(Proteome, SummaryOnEmpty) {
  const ProteomeStats st = summarize_proteome({});
  EXPECT_EQ(st.count, 0);
  EXPECT_EQ(st.total_residues, 0);
}

}  // namespace
}  // namespace sf
