// Cross-validation of the affine-gap DP against an exhaustive reference
// on tiny inputs: the optimal local alignment score must match a
// brute-force enumeration of all (start, end) substring pairs aligned by
// a simple O(n m) recursion with affine gaps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bio/amino_acid.hpp"
#include "seqsearch/alignment.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

// Reference local score: standard Gotoh on full matrices, no traceback,
// written independently of the production code (different layout,
// different recurrence order) to be a genuine cross-check.
int reference_local_score(const std::string& q, const std::string& s, int open, int ext) {
  const int n = static_cast<int>(q.size());
  const int m = static_cast<int>(s.size());
  const int kNeg = -1000000;
  std::vector<std::vector<int>> H(n + 1, std::vector<int>(m + 1, 0));
  std::vector<std::vector<int>> E(n + 1, std::vector<int>(m + 1, kNeg));
  std::vector<std::vector<int>> F(n + 1, std::vector<int>(m + 1, kNeg));
  int best = 0;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      E[i][j] = std::max(H[i][j - 1] + open, E[i][j - 1] + ext);
      F[i][j] = std::max(H[i - 1][j] + open, F[i - 1][j] + ext);
      const int diag = H[i - 1][j - 1] + blosum62(q[i - 1], s[j - 1]);
      H[i][j] = std::max({0, diag, E[i][j], F[i][j]});
      best = std::max(best, H[i][j]);
    }
  }
  return best;
}

std::string random_seq(int n, Rng& rng) {
  std::string s;
  for (int i = 0; i < n; ++i) {
    s += aa_from_index(static_cast<int>(rng.uniform_int(0, kNumAminoAcids - 1)));
  }
  return s;
}

class SwBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SwBruteForce, MatchesReference) {
  Rng rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const std::string q = random_seq(static_cast<int>(rng.uniform_int(1, 18)), rng);
    const std::string s = random_seq(static_cast<int>(rng.uniform_int(1, 18)), rng);
    const AlignmentParams params;
    const AlignmentResult r = smith_waterman(q, s, params);
    const int ref = reference_local_score(q, s, params.gap_open, params.gap_extend);
    EXPECT_EQ(r.score, ref) << "q=" << q << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwBruteForce, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SwBruteForce, RelatedSequencesToo) {
  // Homologous pairs exercise long diagonal runs with internal gaps.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const std::string q = random_seq(25, rng);
    std::string s = q;
    // A deletion and two substitutions.
    s.erase(static_cast<std::size_t>(rng.uniform_int(3, 18)), 2);
    s[2] = s[2] == 'A' ? 'W' : 'A';
    const AlignmentParams params;
    EXPECT_EQ(smith_waterman(q, s, params).score,
              reference_local_score(q, s, params.gap_open, params.gap_extend));
  }
}

TEST(SwBruteForce, ScoreConsistentWithReportedPairs) {
  // The score reconstructed from the traceback (sum of substitution
  // scores + affine gap penalties between non-contiguous pairs) must
  // equal the reported score.
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const std::string q = random_seq(30, rng);
    std::string s = q;
    s.insert(10, "WW");
    s[20] = s[20] == 'G' ? 'K' : 'G';
    const AlignmentParams params;
    const AlignmentResult r = smith_waterman(q, s, params);
    int rebuilt = 0;
    for (std::size_t k = 0; k < r.pairs.size(); ++k) {
      const auto [qi, sj] = r.pairs[k];
      rebuilt += blosum62(q[static_cast<std::size_t>(qi)], s[static_cast<std::size_t>(sj)]);
      if (k > 0) {
        const int dq = qi - r.pairs[k - 1].first - 1;
        const int ds = sj - r.pairs[k - 1].second - 1;
        for (int g : {dq, ds}) {
          if (g > 0) rebuilt += params.gap_open + (g - 1) * params.gap_extend;
        }
      }
    }
    EXPECT_EQ(rebuilt, r.score);
  }
}

}  // namespace
}  // namespace sf
