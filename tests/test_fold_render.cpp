// Properties of the length-stable fold renderer: the geometry layer that
// makes remote homology (§4.6) and the relaxation inputs meaningful.
#include <gtest/gtest.h>

#include "analysis/struct_align.hpp"
#include "bio/fold_grammar.hpp"
#include "geom/violations.hpp"
#include "native/render.hpp"
#include "score/tm_score.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

struct RenderWorld {
  Rng rng{91};
  FoldSpec fold = sample_fold(rng, 150);
  std::string seq = sample_sequence_for_ss(render_ss(fold, 150), rng);
};

TEST(FoldRender, SsElementsKeepBaseLengthUnderGrowth) {
  RenderWorld w;
  // Indels land in loops: the H/E residue counts must be identical for
  // moderate growth, with only C counts changing.
  const std::string base_ss = render_ss(w.fold, 150);
  const std::string grown_ss = render_ss(w.fold, 180);
  auto count = [](const std::string& ss, char c) {
    return std::count(ss.begin(), ss.end(), c);
  };
  EXPECT_EQ(count(base_ss, 'H'), count(grown_ss, 'H'));
  EXPECT_EQ(count(base_ss, 'E'), count(grown_ss, 'E'));
  EXPECT_EQ(count(grown_ss, 'C') - count(base_ss, 'C'), 30);
}

TEST(FoldRender, ShrinkBelowCoreFallsBackProportionally) {
  RenderWorld w;
  // At 40% of base length the rigid core cannot fit; everything scales.
  const std::string tiny_ss = render_ss(w.fold, 60);
  EXPECT_EQ(tiny_ss.size(), 60u);
  // Still has some secondary structure.
  EXPECT_GT(std::count(tiny_ss.begin(), tiny_ss.end(), 'H') +
                std::count(tiny_ss.begin(), tiny_ss.end(), 'E'),
            10);
}

TEST(FoldRender, NativesAreCleanChains) {
  Rng rng(5);
  for (int k = 0; k < 6; ++k) {
    const FoldSpec fold = sample_fold(rng, 80 + 40 * k);
    const std::string seq = sample_sequence_for_ss(render_ss(fold, 80 + 40 * k), rng);
    const Structure s = build_fold_structure("n", fold, seq);
    // No clashes; bumps rare (see §4.4 -- even natives/predictions carry
    // a small bump load).
    const ViolationReport v = count_violations(s);
    EXPECT_EQ(v.clashes, 0u) << "fold " << k;
    EXPECT_LE(v.bumps, 25u) << "fold " << k;
    // Chain continuity: adjacent CA distances near the virtual bond.
    const auto ca = s.ca_coords();
    for (std::size_t i = 1; i < ca.size(); ++i) {
      const double d = distance(ca[i - 1], ca[i]);
      EXPECT_GT(d, 2.4) << "fold " << k << " res " << i;
      EXPECT_LT(d, 6.5) << "fold " << k << " res " << i;
    }
  }
}

// Property: same-fold renders at different lengths are structurally
// alignable -- the invariant underpinning the annotation experiment.
class CrossLengthStability : public ::testing::TestWithParam<int> {};

TEST_P(CrossLengthStability, HomologsSuperpose) {
  Rng rng(static_cast<unsigned>(GetParam()));
  const FoldSpec fold = sample_fold(rng, 120);
  const std::string seq = sample_sequence_for_ss(render_ss(fold, 120), rng);
  const Structure base = build_fold_structure("b", fold, seq);
  for (int len : {110, 132, 144}) {
    Rng h(7);
    const std::string seq2 = homolog_sequence(fold, seq, 120, len, 0.3, h);
    const Structure render = build_fold_structure("r", fold, seq2);
    const double tm = struct_align(base, render).tm_query;
    EXPECT_GT(tm, 0.6) << "len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossLengthStability, ::testing::Values(41, 42, 43, 44));

TEST(FoldRender, UniverseLengthMatchedSampling) {
  FoldUniverse universe(120, 9);
  Rng rng(3);
  for (int target : {60, 150, 400, 900}) {
    for (int draw = 0; draw < 10; ++draw) {
      const std::size_t f = universe.sample_fold_index_near(rng, target);
      const double base = universe.fold(f).base_length();
      // Within the widened tolerance window of the sampler.
      EXPECT_LT(std::abs(base - target) / target, 1.0) << "target " << target;
    }
  }
}

TEST(FoldRender, NoiseSeedDifferentiatesFamilyMembers) {
  RenderWorld w;
  const Structure a = build_fold_structure("a", w.fold, w.seq, 0.25, 1);
  const Structure b = build_fold_structure("b", w.fold, w.seq, 0.25, 2);
  // Same fold, different member: nearly identical but not bitwise equal.
  EXPECT_GT(tm_score(a, b).tm_score, 0.9);
  EXPECT_GT(distance(a.residue(0).ca, b.residue(0).ca), 1e-6);
}

}  // namespace
}  // namespace sf
