#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sf {
namespace {

TEST(Csv, WritesSimpleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("has,comma", "has\"quote", "plain");
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseQuotedFields) {
  const auto fields = parse_csv_line("\"has,comma\",\"has\"\"quote\",tail");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "has,comma");
  EXPECT_EQ(fields[1], "has\"quote");
  EXPECT_EQ(fields[2], "tail");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, RoundTrip) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("x,y", 42, "q\"q");
  std::string line = out.str();
  line.pop_back();  // strip newline
  const auto fields = parse_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "42");
  EXPECT_EQ(fields[2], "q\"q");
}

}  // namespace
}  // namespace sf
