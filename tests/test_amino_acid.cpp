#include "bio/amino_acid.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(AminoAcid, IndexRoundTrip) {
  for (int i = 0; i < kNumAminoAcids; ++i) {
    EXPECT_EQ(aa_index(aa_from_index(i)), i);
  }
  EXPECT_EQ(aa_index('X'), -1);
  EXPECT_EQ(aa_index('a'), -1);  // lowercase is not standard
  EXPECT_EQ(aa_from_index(-1), 'X');
  EXPECT_EQ(aa_from_index(20), 'X');
}

TEST(AminoAcid, HeavyAtomTable) {
  EXPECT_EQ(aa_heavy_atoms('G'), 4);
  EXPECT_EQ(aa_heavy_atoms('A'), 5);
  EXPECT_EQ(aa_heavy_atoms('W'), 14);
  EXPECT_EQ(aa_heavy_atoms('R'), 11);
  EXPECT_EQ(aa_heavy_atoms('?'), 5);  // unknown falls back to ALA
  for (int i = 0; i < kNumAminoAcids; ++i) {
    const int h = aa_heavy_atoms(aa_from_index(i));
    EXPECT_GE(h, 4);
    EXPECT_LE(h, 14);
  }
}

TEST(AminoAcid, CbAndScFlags) {
  EXPECT_FALSE(aa_has_cb('G'));
  EXPECT_TRUE(aa_has_cb('A'));
  EXPECT_FALSE(aa_has_sc('G'));
  EXPECT_FALSE(aa_has_sc('A'));
  EXPECT_TRUE(aa_has_sc('W'));
}

TEST(AminoAcid, BackgroundFrequenciesSumToOne) {
  double sum = 0.0;
  for (int i = 0; i < kNumAminoAcids; ++i) sum += aa_background_freq(aa_from_index(i));
  EXPECT_NEAR(sum, 1.0, 0.01);
  EXPECT_EQ(aa_background_freq('X'), 0.0);
}

TEST(AminoAcid, PropensitiesAreSane) {
  // Classic helix formers vs breakers.
  EXPECT_GT(aa_helix_propensity('A'), aa_helix_propensity('P'));
  EXPECT_GT(aa_helix_propensity('E'), aa_helix_propensity('G'));
  // Classic strand formers.
  EXPECT_GT(aa_strand_propensity('V'), aa_strand_propensity('D'));
  EXPECT_GT(aa_strand_propensity('I'), aa_strand_propensity('P'));
}

TEST(AminoAcid, Blosum62Properties) {
  // Symmetry.
  for (int i = 0; i < kNumAminoAcids; ++i) {
    for (int j = 0; j < kNumAminoAcids; ++j) {
      EXPECT_EQ(blosum62(aa_from_index(i), aa_from_index(j)),
                blosum62(aa_from_index(j), aa_from_index(i)));
    }
  }
  // Diagonal dominance: self-substitution beats any other substitution.
  for (int i = 0; i < kNumAminoAcids; ++i) {
    const char a = aa_from_index(i);
    for (int j = 0; j < kNumAminoAcids; ++j) {
      if (i == j) continue;
      EXPECT_GT(blosum62(a, a), blosum62(a, aa_from_index(j)));
    }
  }
  // Known values.
  EXPECT_EQ(blosum62('W', 'W'), 11);
  EXPECT_EQ(blosum62('A', 'A'), 4);
  EXPECT_EQ(blosum62('I', 'L'), 2);
  EXPECT_EQ(blosum62('W', 'G'), -2);
  EXPECT_EQ(blosum62('X', 'A'), -1);  // unknown penalized
}

TEST(AminoAcid, BlosumRowMatchesMatrix) {
  const auto& row = blosum62_row('K');
  for (int j = 0; j < kNumAminoAcids; ++j) {
    EXPECT_EQ(row[static_cast<std::size_t>(j)], blosum62('K', aa_from_index(j)));
  }
}

TEST(AminoAcid, Hydropathy) {
  EXPECT_GT(aa_hydropathy('I'), 4.0);
  EXPECT_LT(aa_hydropathy('R'), -4.0);
}

}  // namespace
}  // namespace sf
