#include "geom/structure.hpp"

#include <gtest/gtest.h>

#include "geom/kabsch.hpp"

namespace sf {
namespace {

Structure make_tiny() {
  Structure s("tiny");
  for (int i = 0; i < 3; ++i) {
    Residue r;
    r.aa = "AGW"[i];
    r.heavy_atoms = i == 1 ? 4 : (i == 2 ? 14 : 5);
    r.has_cb = i != 1;  // G has no CB
    r.has_sc = i == 2;  // W has a sidechain centroid
    r.ca = {static_cast<double>(i) * 3.8, 0, 0};
    r.n = r.ca + Vec3{-1, 0.5, 0};
    r.c = r.ca + Vec3{1, 0.5, 0};
    r.o = r.c + Vec3{0, 1, 0};
    if (r.has_cb) r.cb = r.ca + Vec3{0, -1.5, 0};
    if (r.has_sc) r.sc = r.ca + Vec3{0, -3, 0};
    s.add_residue(r);
  }
  return s;
}

TEST(Structure, SequenceString) { EXPECT_EQ(make_tiny().sequence_string(), "AGW"); }

TEST(Structure, AtomCounts) {
  const Structure s = make_tiny();
  // Residue 0: N CA C O CB = 5; residue 1: 4; residue 2: N CA C O CB SC = 6.
  EXPECT_EQ(s.modeled_atom_count(), 15u);
  EXPECT_EQ(s.heavy_atom_count(), 5 + 4 + 14);
}

TEST(Structure, CaCoordsRoundTrip) {
  Structure s = make_tiny();
  auto ca = s.ca_coords();
  ASSERT_EQ(ca.size(), 3u);
  ca[1].y = 7.0;
  s.set_ca_coords(ca);
  EXPECT_DOUBLE_EQ(s.residue(1).ca.y, 7.0);
  EXPECT_THROW(s.set_ca_coords(std::vector<Vec3>(2)), std::invalid_argument);
}

TEST(Structure, AllAtomRoundTrip) {
  Structure s = make_tiny();
  auto coords = s.all_atom_coords();
  ASSERT_EQ(coords.size(), s.modeled_atom_count());
  for (auto& p : coords) p += Vec3{1, 2, 3};
  s.set_all_atom_coords(coords);
  const auto coords2 = s.all_atom_coords();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_NEAR(distance(coords[i], coords2[i]), 0.0, 1e-12);
  }
  EXPECT_THROW(s.set_all_atom_coords(std::vector<Vec3>(3)), std::invalid_argument);
  coords.push_back({});
  EXPECT_THROW(s.set_all_atom_coords(coords), std::invalid_argument);
}

TEST(Structure, TransformMovesEveryAtom) {
  Structure s = make_tiny();
  const auto before = s.all_atom_coords();
  Superposition sp;
  sp.translation = {10, 0, 0};
  s.transform(sp);
  const auto after = s.all_atom_coords();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i].x - before[i].x, 10.0, 1e-12);
  }
}

TEST(Structure, CentroidAndGyration) {
  const Structure s = make_tiny();
  const Vec3 c = s.centroid_ca();
  EXPECT_NEAR(c.x, 3.8, 1e-12);
  EXPECT_GT(s.radius_of_gyration(), 0.0);
  EXPECT_EQ(Structure{}.radius_of_gyration(), 0.0);
}

TEST(Structure, EmptyIsSafe) {
  const Structure s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.modeled_atom_count(), 0u);
  EXPECT_EQ(s.heavy_atom_count(), 0);
  EXPECT_TRUE(s.ca_coords().empty());
}

}  // namespace
}  // namespace sf
