#include "bio/fold_grammar.hpp"

#include <gtest/gtest.h>

#include "bio/sequence.hpp"
#include "native/render.hpp"
#include "score/tm_score.hpp"

namespace sf {
namespace {

TEST(FoldGrammar, SampleFoldCoversTargetLength) {
  Rng rng(1);
  const FoldSpec fold = sample_fold(rng, 200);
  EXPECT_EQ(fold.base_length(), 200);
  EXPECT_FALSE(fold.elements.empty());
}

TEST(FoldGrammar, RenderSsExactLength) {
  Rng rng(2);
  const FoldSpec fold = sample_fold(rng, 100);
  for (int len : {1, 37, 100, 163, 400}) {
    const std::string ss = render_ss(fold, len);
    EXPECT_EQ(static_cast<int>(ss.size()), len);
    for (char c : ss) EXPECT_TRUE(c == 'H' || c == 'E' || c == 'C');
  }
}

TEST(FoldGrammar, RenderPreservesElementOrder) {
  FoldSpec fold;
  fold.elements = {{'H', 10}, {'C', 5}, {'E', 10}};
  const std::string ss = render_ss(fold, 50);
  // First H run, then C, then E; no interleaving.
  const auto first_c = ss.find('C');
  const auto first_e = ss.find('E');
  EXPECT_LT(ss.find('H'), first_c);
  EXPECT_LT(first_c, first_e);
}

TEST(FoldGrammar, SequenceMatchesPropensities) {
  Rng rng(3);
  // Helix-heavy sequences should be enriched in helix formers vs strand.
  const std::string helix_seq = sample_sequence_for_ss(std::string(3000, 'H'), rng);
  const std::string strand_seq = sample_sequence_for_ss(std::string(3000, 'E'), rng);
  auto count = [](const std::string& s, char aa) {
    return static_cast<double>(std::count(s.begin(), s.end(), aa)) / s.size();
  };
  EXPECT_GT(count(helix_seq, 'A') + count(helix_seq, 'E') + count(helix_seq, 'L'),
            count(strand_seq, 'A') + count(strand_seq, 'E') + count(strand_seq, 'L'));
  EXPECT_GT(count(strand_seq, 'V') + count(strand_seq, 'I'),
            count(helix_seq, 'V') + count(helix_seq, 'I'));
}

TEST(FoldGrammar, HomologIdentityControl) {
  Rng rng(4);
  const FoldSpec fold = sample_fold(rng, 150);
  const std::string parent = sample_sequence_for_ss(render_ss(fold, 150), rng);
  for (double target : {0.9, 0.5, 0.2}) {
    Rng hrng(42);
    const std::string hom = homolog_sequence(fold, parent, 150, 150, target, hrng);
    const double id = naive_sequence_identity(parent, hom);
    EXPECT_NEAR(id, target, 0.12);
  }
}

TEST(FoldGrammar, HomologLengthChange) {
  Rng rng(5);
  const FoldSpec fold = sample_fold(rng, 100);
  const std::string parent = sample_sequence_for_ss(render_ss(fold, 100), rng);
  const std::string hom = homolog_sequence(fold, parent, 100, 140, 0.6, rng);
  EXPECT_EQ(hom.size(), 140u);
}

TEST(FoldGrammar, StructureIsDeterministicPerFold) {
  Rng rng(6);
  const FoldSpec fold = sample_fold(rng, 80);
  const std::string seq = sample_sequence_for_ss(render_ss(fold, 80), rng);
  const Structure a = build_fold_structure("a", fold, seq);
  const Structure b = build_fold_structure("b", fold, seq);
  EXPECT_NEAR(tm_score(a, b).tm_score, 1.0, 1e-9);
}

TEST(FoldGrammar, HomologsShareTheFold) {
  Rng rng(7);
  const FoldSpec fold = sample_fold(rng, 120);
  const std::string seq1 = sample_sequence_for_ss(render_ss(fold, 120), rng);
  Rng hrng(1);
  const std::string seq2 = homolog_sequence(fold, seq1, 120, 120, 0.3, hrng);
  const Structure a = build_fold_structure("a", fold, seq1);
  const Structure b = build_fold_structure("b", fold, seq2);
  // Same fold at same length: near-identical backbones even at 30%
  // sequence identity (structure outlasts sequence).
  EXPECT_GT(tm_score(a, b).tm_score, 0.9);
}

TEST(FoldGrammar, DifferentFoldsDiffer) {
  Rng rng(8);
  const FoldSpec f1 = sample_fold(rng, 120);
  const FoldSpec f2 = sample_fold(rng, 120);
  const std::string s1 = sample_sequence_for_ss(render_ss(f1, 120), rng);
  const std::string s2 = sample_sequence_for_ss(render_ss(f2, 120), rng);
  const Structure a = build_fold_structure("a", f1, s1);
  const Structure b = build_fold_structure("b", f2, s2);
  EXPECT_LT(tm_score(a, b).tm_score, 0.6);
}

TEST(FoldGrammar, NoiseParameterPerturbs) {
  Rng rng(9);
  const FoldSpec fold = sample_fold(rng, 100);
  const std::string seq = sample_sequence_for_ss(render_ss(fold, 100), rng);
  const Structure clean = build_fold_structure("c", fold, seq);
  const Structure noisy = build_fold_structure("n", fold, seq, 1.0, 77);
  const double tm = tm_score(noisy, clean).tm_score;
  EXPECT_LT(tm, 0.999);
  EXPECT_GT(tm, 0.6);
}

TEST(FoldUniverseTest, DeterministicAndWeighted) {
  FoldUniverse u1(50, 123), u2(50, 123);
  ASSERT_EQ(u1.size(), 50u);
  EXPECT_EQ(u1.canonical_sequence(7), u2.canonical_sequence(7));
  EXPECT_EQ(u1.annotation(3), u2.annotation(3));
  // Zipf weights decrease.
  EXPECT_GT(u1.family_weight(0), u1.family_weight(10));
  EXPECT_GT(u1.family_weight(10), u1.family_weight(49));
  // Sampling respects weights: fold 0 drawn more often than fold 49.
  Rng rng(5);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t f = u1.sample_fold_index(rng);
    if (f == 0) ++high;
    if (f == 49) ++low;
  }
  EXPECT_GT(high, low * 3);
}

}  // namespace
}  // namespace sf
