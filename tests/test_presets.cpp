#include "fold/presets.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(Presets, PaperConfigurations) {
  const PresetConfig rd = preset_reduced_db();
  EXPECT_EQ(rd.ensembles, 1);
  EXPECT_EQ(rd.max_recycles, 3);
  EXPECT_FALSE(rd.dynamic_recycling);

  const PresetConfig c14 = preset_casp14();
  EXPECT_EQ(c14.ensembles, 8);  // ~8x compute (§3.2.2)
  EXPECT_EQ(c14.max_recycles, 3);

  const PresetConfig g = preset_genome();
  EXPECT_TRUE(g.dynamic_recycling);
  EXPECT_DOUBLE_EQ(g.convergence_tol_A, 0.5);
  EXPECT_EQ(g.max_recycles, 20);
  EXPECT_EQ(g.min_recycles, 6);

  const PresetConfig s = preset_super();
  EXPECT_DOUBLE_EQ(s.convergence_tol_A, 0.1);
  EXPECT_EQ(s.max_recycles, 20);
}

TEST(Presets, LookupByName) {
  EXPECT_EQ(preset_by_name("genome").name, "genome");
  EXPECT_EQ(preset_by_name("casp14").ensembles, 8);
  EXPECT_THROW(preset_by_name("bogus"), std::invalid_argument);
  EXPECT_EQ(all_presets().size(), 4u);
}

TEST(Presets, RecycleCapDecay) {
  const PresetConfig g = preset_genome();
  // Short sequences keep the full cap.
  EXPECT_EQ(effective_max_recycles(g, 100), 20);
  EXPECT_EQ(effective_max_recycles(g, 500), 20);
  // Decays progressively past 500 AA (§3.2.2)...
  EXPECT_LT(effective_max_recycles(g, 1000), 20);
  EXPECT_GT(effective_max_recycles(g, 1000), 6);
  // ... down to the floor of 6 for the longest targets.
  EXPECT_EQ(effective_max_recycles(g, 2400), 6);
  // Monotone non-increasing in length.
  int prev = 21;
  for (int len = 100; len <= 2500; len += 100) {
    const int cap = effective_max_recycles(g, len);
    EXPECT_LE(cap, prev);
    prev = cap;
  }
}

TEST(Presets, FixedPresetsIgnoreLength) {
  EXPECT_EQ(effective_max_recycles(preset_reduced_db(), 2500), 3);
  EXPECT_EQ(effective_max_recycles(preset_casp14(), 2500), 3);
}

}  // namespace
}  // namespace sf
