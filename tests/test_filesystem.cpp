#include "sim/filesystem.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(Filesystem, SlowdownMonotoneInLoad) {
  const FilesystemModel fs;
  double prev = 0.0;
  for (int jobs = 0; jobs <= 12; ++jobs) {
    const double s = fs.io_slowdown(jobs);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(fs.io_slowdown(0), 1.0);
}

TEST(Filesystem, SaturationIsCapped) {
  const FilesystemModel fs;
  // rho >= 1 -> capped, not infinite.
  EXPECT_DOUBLE_EQ(fs.io_slowdown(100), fs.max_slowdown);
}

TEST(Filesystem, PaperOperatingPointIsComfortable) {
  // 4 jobs per replica (the paper's layout) keeps latency under ~2x;
  // piling everything on one copy saturates it.
  const FilesystemModel fs;
  EXPECT_LT(fs.io_slowdown(4), 2.1);
  EXPECT_GT(fs.io_slowdown(10), fs.io_slowdown(4) * 2.0);
}

TEST(Filesystem, StagingCostScalesWithReplicas) {
  const FilesystemModel fs;
  const double gb420 = 420.0 * 1e9;
  EXPECT_NEAR(fs.staging_seconds(gb420, 24) / fs.staging_seconds(gb420, 1), 24.0, 1e-9);
  EXPECT_EQ(fs.staging_seconds(gb420, 0), 0.0);
}

TEST(Filesystem, ThroughputPeaksNearPaperLayout) {
  // With 96 concurrent jobs, spreading over 24 replicas (4 each) beats
  // both extremes: few replicas (contention) is worse; as many replicas
  // as feasible helps throughput but costs storage -- the knee justifies
  // the paper's choice.
  const FilesystemModel fs;
  const double task_s = 270.0;
  const double io_frac = 0.35;
  const double t1 = fs.fleet_throughput(96, 1, task_s, io_frac);
  const double t6 = fs.fleet_throughput(96, 6, task_s, io_frac);
  const double t24 = fs.fleet_throughput(96, 24, task_s, io_frac);
  const double t48 = fs.fleet_throughput(96, 48, task_s, io_frac);
  EXPECT_GT(t6, t1);
  EXPECT_GT(t24, t6);
  // Diminishing returns past the knee: doubling replicas again buys little.
  EXPECT_LT(t48 / t24, 1.30);
}

TEST(Filesystem, ThroughputDegenerateInputs) {
  const FilesystemModel fs;
  EXPECT_EQ(fs.fleet_throughput(0, 4, 100.0, 0.3), 0.0);
  EXPECT_EQ(fs.fleet_throughput(4, 0, 100.0, 0.3), 0.0);
  EXPECT_EQ(fs.fleet_throughput(4, 4, 0.0, 0.3), 0.0);
}

TEST(Filesystem, UnevenSpreadHandled) {
  const FilesystemModel fs;
  // 5 jobs over 4 replicas: one replica carries 2.
  const double t = fs.fleet_throughput(5, 4, 100.0, 0.35);
  EXPECT_GT(t, 0.0);
  // Still better than all 5 on one replica.
  EXPECT_GT(t, fs.fleet_throughput(5, 1, 100.0, 0.35));
}

TEST(Filesystem, ArtifactStagingPricedThroughMetadataQueue) {
  const FilesystemModel fs;
  // Metadata ops inflate with replica load, exactly like library reads.
  EXPECT_GT(fs.artifact_read_seconds(0.0, 8), fs.artifact_read_seconds(0.0, 2));
  EXPECT_GT(fs.artifact_write_seconds(0.0, 8), fs.artifact_write_seconds(0.0, 2));
  EXPECT_GT(fs.artifact_lookup_seconds(8), fs.artifact_lookup_seconds(2));
  // A write is two metadata ops (create + rename) to a read's one.
  EXPECT_DOUBLE_EQ(fs.artifact_write_seconds(0.0, 4), 2.0 * fs.artifact_read_seconds(0.0, 4));
  // The body streams at replica bandwidth, independent of metadata load.
  const double body = 1.2e9;  // one bandwidth-second of bytes
  EXPECT_DOUBLE_EQ(fs.artifact_read_seconds(body, 4) - fs.artifact_read_seconds(0.0, 4),
                   body / fs.artifact_bandwidth_bytes_per_s);
  // A miss probe costs one op and never touches the data servers.
  EXPECT_DOUBLE_EQ(fs.artifact_lookup_seconds(4), fs.artifact_read_seconds(0.0, 4));
  // Degenerate inputs stay finite and non-negative.
  EXPECT_GE(fs.artifact_read_seconds(-5.0, 4), 0.0);
}

}  // namespace
}  // namespace sf
