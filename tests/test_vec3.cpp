#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace sf {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((a / 2.0).x, 0.5);
  EXPECT_DOUBLE_EQ((-a).z, -3.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const Vec3 c = x.cross(y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.normalized().norm(), 1.0);
  // Zero vector normalizes to a unit fallback, not NaN.
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 1.0);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1, 1, 1}, {2, 2, 2}), 3.0);
}

TEST(Mat3, IdentityAction) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1.5, -2.5, 3.5};
  const Vec3 r = id * v;
  EXPECT_DOUBLE_EQ(r.x, v.x);
  EXPECT_DOUBLE_EQ(r.y, v.y);
  EXPECT_DOUBLE_EQ(r.z, v.z);
  EXPECT_DOUBLE_EQ(id.det(), 1.0);
}

TEST(Mat3, TransposeAndProduct) {
  Mat3 m;
  m.m[0][1] = 2.0;
  const Mat3 t = m.transpose();
  EXPECT_DOUBLE_EQ(t.m[1][0], 2.0);
  const Mat3 p = m * Mat3::identity();
  EXPECT_DOUBLE_EQ(p.m[0][1], 2.0);
}

TEST(Rotation, PreservesLengthAndAngle) {
  const Mat3 r = rotation_about_axis({0, 0, 1}, std::numbers::pi / 2.0);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
  EXPECT_NEAR(r.det(), 1.0, 1e-12);
}

TEST(Rotation, ArbitraryAxisIsOrthonormal) {
  const Mat3 r = rotation_about_axis(Vec3{1, 2, 3}.normalized(), 0.7);
  const Mat3 rtr = r.transpose() * r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(rtr.m[i][j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

}  // namespace
}  // namespace sf
