#include "core/recycle_model.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(RecycleModel, SamplesFromMatchingBin) {
  RecycleModel model;
  // Easy short targets converge at 3; hard long ones at 20.
  for (int i = 0; i < 20; ++i) model.observe(0.1, 100, 3, true);
  for (int i = 0; i < 20; ++i) model.observe(0.9, 800, 20, false);
  EXPECT_EQ(model.observations(), 40u);

  Rng rng(1);
  const auto easy = model.sample(0.1, 100, rng);
  EXPECT_EQ(easy.recycles_run, 3);
  EXPECT_TRUE(easy.converged);
  const auto hard = model.sample(0.9, 800, rng);
  EXPECT_EQ(hard.recycles_run, 20);
  EXPECT_FALSE(hard.converged);
}

TEST(RecycleModel, FallsBackToNearestBin) {
  RecycleModel model;
  model.observe(0.1, 100, 5, true);
  Rng rng(2);
  // No observation at hardness 0.9 / same length class: falls back.
  const auto draw = model.sample(0.9, 100, rng);
  EXPECT_EQ(draw.recycles_run, 5);
}

TEST(RecycleModel, GlobalFallback) {
  RecycleModel model;
  model.observe(0.5, 400, 7, true);
  Rng rng(3);
  // Different length class entirely: global pool serves.
  const auto draw = model.sample(0.5, 2000, rng);
  EXPECT_EQ(draw.recycles_run, 7);
}

TEST(RecycleModel, EmptyModelReturnsDefault) {
  RecycleModel model;
  Rng rng(4);
  const auto draw = model.sample(0.5, 300, rng);
  EXPECT_EQ(draw.recycles_run, 3);  // documented default
  EXPECT_TRUE(draw.converged);
}

TEST(RecycleModel, SamplingIsDeterministicInRng) {
  RecycleModel model;
  for (int r = 3; r <= 12; ++r) model.observe(0.4, 300, r, true);
  Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.sample(0.4, 300, a).recycles_run, model.sample(0.4, 300, b).recycles_run);
  }
}

TEST(RecycleModel, PreservesDistribution) {
  RecycleModel model;
  // 75% of observations at 3, 25% at 20.
  for (int i = 0; i < 75; ++i) model.observe(0.5, 300, 3, true);
  for (int i = 0; i < 25; ++i) model.observe(0.5, 300, 20, false);
  Rng rng(9);
  int high = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(0.5, 300, rng).recycles_run == 20) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace sf
