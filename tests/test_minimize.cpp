#include "relax/minimize.hpp"

#include <gtest/gtest.h>

#include "bio/amino_acid.hpp"
#include "geom/backbone.hpp"
#include "geom/violations.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

Structure noisy_structure(int n, double noise, unsigned seed) {
  Rng rng(seed);
  std::vector<ResidueSpec> spec;
  const char* aas = "MKWLVEDRTY";
  for (int i = 0; i < n; ++i) {
    ResidueSpec rs;
    rs.aa = aas[i % 10];
    rs.heavy_atoms = aa_heavy_atoms(rs.aa);
    rs.has_cb = aa_has_cb(rs.aa);
    rs.has_sc = aa_has_sc(rs.aa);
    spec.push_back(rs);
  }
  std::string ss;
  for (int i = 0; i < n; ++i) ss += (i / 11) % 2 ? 'H' : 'E';
  Structure s = build_structure("m", spec, ss, rng);
  if (noise > 0) {
    auto coords = s.all_atom_coords();
    for (auto& p : coords) {
      p += Vec3{rng.normal(0, noise), rng.normal(0, noise), rng.normal(0, noise)};
    }
    s.set_all_atom_coords(coords);
  }
  return s;
}

TEST(Minimize, LbfgsReducesEnergyAndConverges) {
  const Structure s = noisy_structure(40, 0.5, 3);
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  const MinimizeResult r = minimize_lbfgs(ff, coords);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_energy, r.initial_energy);
  EXPECT_GT(r.steps, 0);
  EXPECT_GE(r.energy_evaluations, r.steps);
}

TEST(Minimize, FireReducesEnergy) {
  const Structure s = noisy_structure(40, 0.5, 3);
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  const MinimizeResult r = minimize_fire(ff, coords);
  EXPECT_LT(r.final_energy, r.initial_energy);
}

TEST(Minimize, BackendsFindComparableMinima) {
  const Structure s = noisy_structure(35, 0.6, 5);
  const ForceField ff(s);
  auto c1 = s.all_atom_coords();
  auto c2 = s.all_atom_coords();
  MinimizeOptions opts;
  opts.energy_tolerance = 0.1;  // tight, to compare minima rather than stops
  const MinimizeResult lbfgs = minimize_lbfgs(ff, c1, opts);
  const MinimizeResult fire = minimize_fire(ff, c2, opts);
  // Independent optimizers agree on the reachable basin energy within a
  // few percent.
  const double scale = std::max(1.0, std::abs(lbfgs.final_energy));
  EXPECT_NEAR(lbfgs.final_energy, fire.final_energy, 0.1 * scale);
}

TEST(Minimize, EnergyToleranceStopsEarly) {
  const Structure s = noisy_structure(40, 0.5, 7);
  const ForceField ff(s);
  auto loose_coords = s.all_atom_coords();
  auto tight_coords = s.all_atom_coords();
  MinimizeOptions loose;
  loose.energy_tolerance = 50.0;
  MinimizeOptions tight;
  tight.energy_tolerance = 0.01;
  const MinimizeResult r_loose = minimize_lbfgs(ff, loose_coords, loose);
  const MinimizeResult r_tight = minimize_lbfgs(ff, tight_coords, tight);
  EXPECT_LE(r_loose.steps, r_tight.steps);
  EXPECT_GE(r_tight.initial_energy - r_tight.final_energy,
            r_loose.initial_energy - r_loose.final_energy - 1e-9);
}

TEST(Minimize, StepCapRespected) {
  const Structure s = noisy_structure(40, 1.0, 9);
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  MinimizeOptions opts;
  opts.max_steps = 5;
  opts.energy_tolerance = 1e-12;  // effectively never converge
  opts.grad_tolerance = 0.0;
  const MinimizeResult r = minimize_lbfgs(ff, coords, opts);
  EXPECT_LE(r.steps, 5);
}

TEST(Minimize, EmptyCoordsSafe) {
  const Structure s;  // empty
  const ForceField ff(s);
  std::vector<Vec3> coords;
  const MinimizeResult r = minimize_lbfgs(ff, coords);
  EXPECT_EQ(r.steps, 0);
}

TEST(Minimize, RestraintsKeepStructureNearInput) {
  const Structure s = noisy_structure(50, 0.4, 11);
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  minimize_lbfgs(ff, coords);
  // With k=10 restraints, minimized atoms stay within ~1 A of input.
  const auto input = s.all_atom_coords();
  double max_move = 0.0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    max_move = std::max(max_move, distance(coords[i], input[i]));
  }
  EXPECT_LT(max_move, 1.5);
}

// Property: minimization monotonically improves across noise levels.
class MinimizeNoise : public ::testing::TestWithParam<double> {};

TEST_P(MinimizeNoise, AlwaysImproves) {
  const Structure s = noisy_structure(30, GetParam(), 13);
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  const MinimizeResult r = minimize_lbfgs(ff, coords);
  EXPECT_LE(r.final_energy, r.initial_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Noise, MinimizeNoise, ::testing::Values(0.0, 0.2, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace sf
