// sfcheck's own test bed: fixture snippets with known-good and
// known-bad code per rule, checked for *exact* diagnostics (rule,
// file, line) and for suppression semantics. The fixtures live under
// tests/sfcheck_fixtures/ in a miniature src/ tree so path-based
// scoping (modules, D3 scope, layer ranks) is exercised for real.
#include "sfcheck.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace {

using sf::lint::Config;
using sf::lint::ScanResult;
using sf::lint::SourceFile;

SourceFile load_fixture(const std::string& rel) {
  const std::filesystem::path p = std::filesystem::path(SFCHECK_FIXTURE_DIR) / rel;
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return {rel, ss.str()};
}

ScanResult scan(std::initializer_list<std::string> rels) {
  std::vector<SourceFile> files;
  for (const auto& r : rels) files.push_back(load_fixture(r));
  return sf::lint::run(files, Config::project_default());
}

void expect_diag(const ScanResult& r, std::size_t i, const std::string& file, int line,
                 const std::string& rule) {
  ASSERT_LT(i, r.diagnostics.size());
  EXPECT_EQ(r.diagnostics[i].file, file);
  EXPECT_EQ(r.diagnostics[i].line, line);
  EXPECT_EQ(r.diagnostics[i].rule, rule);
}

TEST(Sfcheck, D1FlagsRandRandomDeviceAndUnseededMt19937) {
  const auto r = scan({"src/core/d1_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 3u);
  expect_diag(r, 0, "src/core/d1_bad.cpp", 6, "D1");
  expect_diag(r, 1, "src/core/d1_bad.cpp", 7, "D1");
  expect_diag(r, 2, "src/core/d1_bad.cpp", 8, "D1");
  EXPECT_NE(r.diagnostics[0].message.find("rand()"), std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("random_device"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("unseeded"), std::string::npos);
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(Sfcheck, D1AllowsSeededEnginesAndSfRng) {
  const auto r = scan({"src/core/d1_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, D1ExemptsTheRngHome) {
  // The same bad content is legal inside src/util/rng.*.
  auto bad = load_fixture("src/core/d1_bad.cpp");
  bad.path = "src/util/rng.cpp";
  const auto r = sf::lint::run({bad}, Config::project_default());
  for (const auto& d : r.diagnostics) EXPECT_NE(d.rule, "D1") << d.message;
}

TEST(Sfcheck, D2FlagsSystemClockAndTimeCalls) {
  const auto r = scan({"src/core/d2_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  expect_diag(r, 0, "src/core/d2_bad.cpp", 6, "D2");
  expect_diag(r, 1, "src/core/d2_bad.cpp", 7, "D2");
}

TEST(Sfcheck, D2IgnoresLookalikeIdentifiers) {
  const auto r = scan({"src/core/d2_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, D3FlagsRangeForAndIteratorWalks) {
  const auto r = scan({"src/core/d3_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  expect_diag(r, 0, "src/core/d3_bad.cpp", 8, "D3");
  expect_diag(r, 1, "src/core/d3_bad.cpp", 11, "D3");
  EXPECT_NE(r.diagnostics[0].message.find("totals_by_id"), std::string::npos);
}

TEST(Sfcheck, D3AllowsSortKeysFirstPattern) {
  const auto r = scan({"src/core/d3_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, D3OnlyAppliesToDeterministicOutputModules) {
  const auto r = scan({"src/geom/d3_unscoped.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, D3SeesMembersDeclaredInTheModuleHeader) {
  // A member declared unordered in the .hpp is tracked when the .cpp of
  // the same module iterates it.
  SourceFile hpp{"src/core/widget.hpp",
                 "#pragma once\n#include <unordered_map>\n"
                 "struct W { std::unordered_map<int, int> by_id_; };\n"};
  SourceFile cpp{"src/core/widget.cpp",
                 "#include \"core/widget.hpp\"\n"
                 "int sum(const W& w) {\n"
                 "  int s = 0;\n"
                 "  for (const auto& [k, v] : w.by_id_) s += v;\n"
                 "  return s;\n"
                 "}\n"};
  const auto r = sf::lint::run({hpp, cpp}, Config::project_default());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].file, "src/core/widget.cpp");
  EXPECT_EQ(r.diagnostics[0].line, 4);
  EXPECT_EQ(r.diagnostics[0].rule, "D3");
}

TEST(Sfcheck, D4FlagsNakedOfstream) {
  const auto r = scan({"src/core/d4_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/core/d4_bad.cpp", 5, "D4");
}

TEST(Sfcheck, D4AllowsAtomicHelperAndJournal) {
  const auto good = scan({"src/core/d4_good.cpp"});
  EXPECT_TRUE(good.diagnostics.empty());
  // The helper itself and the journal are the sanctioned homes.
  auto bad = load_fixture("src/core/d4_bad.cpp");
  bad.path = "src/util/file_io.cpp";
  const auto helper = sf::lint::run({bad}, Config::project_default());
  EXPECT_TRUE(helper.diagnostics.empty());
  bad.path = "src/core/journal.cpp";
  const auto journal = sf::lint::run({bad}, Config::project_default());
  EXPECT_TRUE(journal.diagnostics.empty());
}

TEST(Sfcheck, L1FlagsUpwardInclude) {
  const auto r = scan({"src/bio/l1_bad.hpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/bio/l1_bad.hpp", 3, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'bio'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'geom'"), std::string::npos);
}

TEST(Sfcheck, L1AllowsDownwardIncludes) {
  const auto r = scan({"src/fold/l1_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, L1DetectsEqualRankCycles) {
  const auto r = scan({"src/fold/cycle_a.hpp", "src/sim/cycle_b.hpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].file, "(include-graph)");
  EXPECT_EQ(r.diagnostics[0].line, 0);
  EXPECT_EQ(r.diagnostics[0].rule, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("fold -> sim -> fold"), std::string::npos);
}

TEST(Sfcheck, L1CoversObsModule) {
  const auto r = scan({"src/obs/l1_bad.hpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/obs/l1_bad.hpp", 3, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'obs'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'core'"), std::string::npos);
}

TEST(Sfcheck, L1CoversSftraceTool) {
  const auto r = scan({"tools/sftrace/l1_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "tools/sftrace/l1_bad.cpp", 3, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'sftrace'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'core'"), std::string::npos);
}

TEST(Sfcheck, L1AllowsSftraceToIncludeObs) {
  SourceFile f{"tools/sftrace/sftrace.cpp",
               "#include \"obs/trace_io.hpp\"\n#include \"util/stats.hpp\"\n"};
  const auto r = sf::lint::run({f}, Config::project_default());
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, L1CoversStoreModule) {
  const auto r = scan({"src/store/l1_bad.hpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/store/l1_bad.hpp", 3, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'store'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'core'"), std::string::npos);
}

TEST(Sfcheck, L1AllowsStoreDownwardAndCoreToIncludeStore) {
  SourceFile store_cpp{"src/store/artifact_store.cpp",
                       "#include \"sim/filesystem.hpp\"\n#include \"util/file_io.hpp\"\n"
                       "#include \"seqsearch/msa.hpp\"\n"};
  SourceFile core_cpp{"src/core/stage_features.cpp",
                      "#include \"store/artifact_store.hpp\"\n"};
  const auto r = sf::lint::run({store_cpp, core_cpp}, Config::project_default());
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, L1CoversDistModule) {
  const auto r = scan({"src/dist/l1_bad.hpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/dist/l1_bad.hpp", 3, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'dist'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'core'"), std::string::npos);
}

TEST(Sfcheck, L1RanksDistAboveDataflowAndBelowCore) {
  // dist composes the rank-3 machinery (dataflow, store) over the rank-2
  // simulation; core sits above and may include it.
  SourceFile dist_cpp{"src/dist/executor.cpp",
                      "#include \"dataflow/executor.hpp\"\n#include \"store/key.hpp\"\n"
                      "#include \"sim/network.hpp\"\n#include \"obs/trace.hpp\"\n"};
  SourceFile core_cpp{"src/core/stage_context.cpp", "#include \"dist/executor.hpp\"\n"};
  const auto ok = sf::lint::run({dist_cpp, core_cpp}, Config::project_default());
  EXPECT_TRUE(ok.diagnostics.empty());
  // The reverse edge -- dataflow reaching up into dist -- is a violation.
  SourceFile dataflow_bad{"src/dataflow/simulated.cpp", "#include \"dist/types.hpp\"\n"};
  const auto r = sf::lint::run({dataflow_bad}, Config::project_default());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "L1");
  EXPECT_NE(r.diagnostics[0].message.find("'dataflow'"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("'dist'"), std::string::npos);
}

TEST(Sfcheck, C1CoversDistModule) {
  const auto r = scan({"src/dist/c1_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 4u);
  expect_diag(r, 0, "src/dist/c1_bad.cpp", 7, "C1");
  expect_diag(r, 1, "src/dist/c1_bad.cpp", 7, "C1");
  expect_diag(r, 2, "src/dist/c1_bad.cpp", 7, "C1");
  expect_diag(r, 3, "src/dist/c1_bad.cpp", 14, "C1");
}

TEST(Sfcheck, R1CoversDistModule) {
  const auto r = scan({"src/dist/r1_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/dist/r1_bad.cpp", 5, "R1");
  EXPECT_NE(r.diagnostics[0].message.find("fn -> wallclock_now()"), std::string::npos);
}

TEST(Sfcheck, D3CoversStoreModule) {
  const auto r = scan({"src/store/d3_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/store/d3_bad.cpp", 10, "D3");
  EXPECT_NE(r.diagnostics[0].message.find("bytes_by_key"), std::string::npos);
}

TEST(Sfcheck, D4AllowsStoreManifestAppenderOnly) {
  // The manifest shares the journal's end-sealed append discipline and
  // carries the same exemption; the rest of src/store/ does not.
  auto bad = load_fixture("src/core/d4_bad.cpp");
  bad.path = "src/store/manifest.cpp";
  const auto manifest = sf::lint::run({bad}, Config::project_default());
  EXPECT_TRUE(manifest.diagnostics.empty());
  bad.path = "src/store/artifact_store.cpp";
  const auto rest = sf::lint::run({bad}, Config::project_default());
  ASSERT_EQ(rest.diagnostics.size(), 1u);
  EXPECT_EQ(rest.diagnostics[0].rule, "D4");
}

TEST(Sfcheck, D3CoversObsModule) {
  const auto r = scan({"src/obs/d3_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "src/obs/d3_bad.cpp", 9, "D3");
  EXPECT_NE(r.diagnostics[0].message.find("busy_by_worker"), std::string::npos);
}

TEST(Sfcheck, D4CoversSftraceTool) {
  const auto r = scan({"tools/sftrace/d4_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "tools/sftrace/d4_bad.cpp", 6, "D4");
}

TEST(Sfcheck, SuppressionWithReasonSilencesAndIsReported) {
  const auto r = scan({"src/core/suppress_ok.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].file, "src/core/suppress_ok.cpp");
  EXPECT_EQ(r.suppressed[0].line, 5);
  EXPECT_EQ(r.suppressed[0].rule, "D4");
  EXPECT_EQ(r.suppressed[0].reason, "fixture demonstrating a reasoned suppression");
}

TEST(Sfcheck, SuppressionWithoutReasonFailsAndSilencesNothing) {
  const auto r = scan({"src/core/suppress_noreason.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  expect_diag(r, 0, "src/core/suppress_noreason.cpp", 6, "D4");
  expect_diag(r, 1, "src/core/suppress_noreason.cpp", 6, "SUP");
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(Sfcheck, SuppressionOnlySilencesTheNamedRule) {
  SourceFile f{"src/core/wrong_rule.cpp",
               "#include <fstream>\n"
               "void f(const char* p) {\n"
               "  std::ofstream out(p);  // sfcheck:allow(D1): wrong rule named\n"
               "}\n"};
  const auto r = sf::lint::run({f}, Config::project_default());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "D4");
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(Sfcheck, LiteralsAndCommentsNeverFire) {
  const auto r = scan({"src/core/strings_ok.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, WholeFixtureTreeCounts) {
  const auto r = scan({
      "examples/d3_bad.cpp", "src/bio/l1_bad.hpp", "src/core/c1_bad.cpp",
      "src/core/c1_good.cpp", "src/core/d1_bad.cpp", "src/core/d1_good.cpp",
      "src/core/d2_bad.cpp", "src/core/d2_good.cpp", "src/core/d3_bad.cpp",
      "src/core/d3_good.cpp", "src/core/d4_bad.cpp", "src/core/d4_good.cpp",
      "src/core/r1_entry.cpp", "src/core/r1_mid.cpp", "src/core/strings_ok.cpp",
      "src/core/suppress_noreason.cpp", "src/core/suppress_ok.cpp",
      "src/dist/c1_bad.cpp", "src/dist/l1_bad.hpp", "src/dist/r1_bad.cpp",
      "src/fold/cycle_a.hpp", "src/fold/l1_good.cpp", "src/geom/d3_unscoped.cpp",
      "src/geom/r1_sink.cpp", "src/obs/d3_bad.cpp", "src/obs/d5_bad.cpp",
      "src/obs/d5_good.cpp", "src/obs/l1_bad.hpp", "src/sim/cycle_b.hpp",
      "src/store/d3_bad.cpp", "src/store/l1_bad.hpp", "tools/sftrace/d4_bad.cpp",
      "tools/sftrace/l1_bad.cpp",
  });
  // 3 D1 + 3 D2 + 5 D3 + 3 D4 + 4 D5 + 1 SUP + 5 L1 includes + 1 L1
  // cycle + 2 R1 + 8 C1.
  EXPECT_EQ(r.diagnostics.size(), 35u);
  EXPECT_EQ(r.suppressed.size(), 1u);
  // Ordered by (file, line, rule): the include-graph cycle sorts first.
  EXPECT_EQ(r.diagnostics[0].file, "(include-graph)");
}

TEST(Sfcheck, PathScoping) {
  EXPECT_TRUE(sf::lint::is_scanned_path("src/core/pipeline.cpp"));
  EXPECT_TRUE(sf::lint::is_scanned_path("tools/sfcheck/main.cpp"));
  EXPECT_TRUE(sf::lint::is_scanned_path("examples/quickstart.cpp"));
  EXPECT_FALSE(sf::lint::is_scanned_path("tests/test_rng.cpp"));
  EXPECT_FALSE(sf::lint::is_scanned_path("bench/bench_micro.cpp"));
  EXPECT_FALSE(sf::lint::is_scanned_path("src/core/notes.md"));
  EXPECT_EQ(sf::lint::module_of("src/geom/vec3.hpp"), "geom");
  EXPECT_EQ(sf::lint::module_of("tools/sfcheck/main.cpp"), "sfcheck");
  EXPECT_EQ(sf::lint::module_of("tools/sftrace/main.cpp"), "sftrace");
  EXPECT_EQ(sf::lint::module_of("src/CMakeLists.txt"), "");
  // examples/ is a pseudo-module so the emit-scoped rules cover the
  // CLIs' report bytes.
  EXPECT_EQ(sf::lint::module_of("examples/quickstart.cpp"), "examples");
  EXPECT_EQ(sf::lint::module_of("examples/sub/tool.cpp"), "examples");
}

// ---------------------------------------------------------------------
// Interprocedural rules (R1 taint, C1 closure purity).
// ---------------------------------------------------------------------

TEST(Sfcheck, R1ReportsCrossFileCallChainToClock) {
  const auto r =
      scan({"src/core/r1_entry.cpp", "src/core/r1_mid.cpp", "src/geom/r1_sink.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  // The entry anchors the interprocedural finding; the sink file also
  // gets the plain file-local D2.
  expect_diag(r, 0, "src/core/r1_entry.cpp", 7, "R1");
  expect_diag(r, 1, "src/geom/r1_sink.cpp", 7, "D2");
  EXPECT_NE(r.diagnostics[0].message.find(
                "fn -> helper_a() -> geom_helper() -> std::chrono::steady_clock"),
            std::string::npos);
  const std::vector<std::string> want_chain = {
      "fn@src/core/r1_entry.cpp:7",
      "helper_a@src/core/r1_mid.cpp:4",
      "geom_helper@src/geom/r1_sink.cpp:6",
      "std::chrono::steady_clock@src/geom/r1_sink.cpp:7",
  };
  EXPECT_EQ(r.diagnostics[0].chain, want_chain);
}

TEST(Sfcheck, R1SilentWithoutTheSinkFile) {
  // Same entry + mid, but the sink's definition is not in the scan set:
  // the chain dead-ends at an unresolved name and nothing fires.
  const auto r = scan({"src/core/r1_entry.cpp", "src/core/r1_mid.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, R1TreatsWallclockShimCallAsSink) {
  SourceFile f{"src/core/uses_shim.cpp",
               "void go() {\n"
               "  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {\n"
               "    return wallclock_now();\n"
               "  };\n"
               "}\n"};
  const auto r = sf::lint::run({f}, Config::project_default());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "R1");
  EXPECT_EQ(r.diagnostics[0].line, 2);
  EXPECT_NE(r.diagnostics[0].message.find("fn -> wallclock_now()"), std::string::npos);
}

TEST(Sfcheck, R1SuppressibleAtTheEntryLine) {
  SourceFile f{"src/core/uses_shim.cpp",
               "void go() {\n"
               "  const TaskFn fn = [&](const TaskSpec& t, const TaskAttempt&) {  "
               "// sfcheck:allow(R1): measured span feeds the stats CSV only\n"
               "    return wallclock_now();\n"
               "  };\n"
               "}\n"};
  const auto r = sf::lint::run({f}, Config::project_default());
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "R1");
}

TEST(Sfcheck, C1FlagsImpureTaskLambdas) {
  const auto r = scan({"src/core/c1_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 4u);
  // Same (file, line, rule) sorts by message: store call, mutating
  // method, compound assignment -- then the mutable lambda.
  expect_diag(r, 0, "src/core/c1_bad.cpp", 7, "C1");
  expect_diag(r, 1, "src/core/c1_bad.cpp", 7, "C1");
  expect_diag(r, 2, "src/core/c1_bad.cpp", 7, "C1");
  expect_diag(r, 3, "src/core/c1_bad.cpp", 14, "C1");
  EXPECT_NE(r.diagnostics[0].message.find("'store->put()'"), std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("'acc.push_back()'"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("'acc_total'"), std::string::npos);
  EXPECT_NE(r.diagnostics[3].message.find("'mutable'"), std::string::npos);
}

TEST(Sfcheck, C1AllowsLocalsAndPerTaskSlotWrites) {
  const auto r = scan({"src/core/c1_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, C1AndR1SkipTheExecutorFrameworkItself) {
  // The executor's own fault-injection wrapper is a TaskFn too, but it
  // implements the contract (mutex-guarded accounting by design).
  auto bad = load_fixture("src/core/c1_bad.cpp");
  bad.path = "src/dataflow/executor.cpp";
  const auto r = sf::lint::run({bad}, Config::project_default());
  for (const auto& d : r.diagnostics) EXPECT_NE(d.rule, "C1") << d.message;
}

// ---------------------------------------------------------------------
// D5: canonical float formatting.
// ---------------------------------------------------------------------

TEST(Sfcheck, D5FlagsNonCanonicalFloatFormatting) {
  const auto r = scan({"src/obs/d5_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 4u);
  expect_diag(r, 0, "src/obs/d5_bad.cpp", 10, "D5");  // bare << of float
  expect_diag(r, 1, "src/obs/d5_bad.cpp", 11, "D5");  // std::to_string
  expect_diag(r, 2, "src/obs/d5_bad.cpp", 12, "D5");  // direct printf
  expect_diag(r, 3, "src/obs/d5_bad.cpp", 12, "D5");  // %f without precision
  EXPECT_NE(r.diagnostics[0].message.find("'total'"), std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("to_string"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("printf"), std::string::npos);
  EXPECT_NE(r.diagnostics[3].message.find("precision-less"), std::string::npos);
}

TEST(Sfcheck, D5AllowsCanonicalSfFormat) {
  const auto r = scan({"src/obs/d5_good.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sfcheck, D5ExemptsTheFormatterHomeFromTheStdioBan) {
  // sf::format's own vsnprintf lives in src/util/string_util.*; the
  // stdio ban does not apply there (the other D5 checks still do).
  auto bad = load_fixture("src/obs/d5_bad.cpp");
  bad.path = "src/util/string_util.cpp";
  const auto r = sf::lint::run({bad}, Config::project_default());
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.message.find("direct printf"), std::string::npos) << d.message;
    EXPECT_EQ(d.message.find("precision-less"), std::string::npos) << d.message;
  }
}

TEST(Sfcheck, D5OnlyAppliesToEmitModules) {
  // geom (and examples/) are outside the D5 scope.
  auto bad = load_fixture("src/obs/d5_bad.cpp");
  bad.path = "src/geom/d5_unscoped.cpp";
  const auto geom = sf::lint::run({bad}, Config::project_default());
  EXPECT_TRUE(geom.diagnostics.empty());
  bad.path = "examples/d5_unscoped.cpp";
  const auto ex = sf::lint::run({bad}, Config::project_default());
  EXPECT_TRUE(ex.diagnostics.empty());
}

// ---------------------------------------------------------------------
// Scoping changes: examples/ pseudo-module, wallclock home.
// ---------------------------------------------------------------------

TEST(Sfcheck, D3CoversExamplesPseudoModule) {
  const auto r = scan({"examples/d3_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  expect_diag(r, 0, "examples/d3_bad.cpp", 9, "D3");
  EXPECT_NE(r.diagnostics[0].message.find("counts"), std::string::npos);
}

TEST(Sfcheck, D2ExemptsTheWallclockHome) {
  // The same clock reads are legal inside src/util/wallclock.* -- the
  // one sanctioned shim.
  auto bad = load_fixture("src/core/d2_bad.cpp");
  bad.path = "src/util/wallclock.cpp";
  const auto r = sf::lint::run({bad}, Config::project_default());
  for (const auto& d : r.diagnostics) EXPECT_NE(d.rule, "D2") << d.message;
}

// ---------------------------------------------------------------------
// Baseline gating.
// ---------------------------------------------------------------------

TEST(Sfcheck, BaselineRoundTripAndDiff) {
  const auto r = scan({"src/core/d4_bad.cpp"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const std::string key = sf::lint::baseline_key(r.diagnostics[0]);
  EXPECT_EQ(key.rfind("D4|src/core/d4_bad.cpp|", 0), 0u) << key;

  const std::string image = sf::lint::render_baseline(r);
  const auto keys = sf::lint::parse_baseline(image);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], key);

  EXPECT_TRUE(sf::lint::baseline_new(r.diagnostics, keys).empty());
  const auto fresh = sf::lint::baseline_new(r.diagnostics, {});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "D4");
}

TEST(Sfcheck, BaselineKeysAreAMultiset) {
  // Two identical findings on different lines share a key (keys omit
  // line numbers); one baseline entry absorbs exactly one of them.
  SourceFile f{"src/core/two_ofstreams.cpp",
               "#include <fstream>\n"
               "void a(const char* p) { std::ofstream out(p); }\n"
               "void b(const char* p) { std::ofstream out(p); }\n"};
  const auto r = sf::lint::run({f}, Config::project_default());
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(sf::lint::baseline_key(r.diagnostics[0]),
            sf::lint::baseline_key(r.diagnostics[1]));
  const auto fresh = sf::lint::baseline_new(
      r.diagnostics, {sf::lint::baseline_key(r.diagnostics[0])});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 3);
}

TEST(Sfcheck, BaselineParserIgnoresCommentsAndBlanks) {
  const auto keys = sf::lint::parse_baseline(
      "# header\n\n  \nB|b.cpp|msg\n# tail\nA|a.cpp|msg\n");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "A|a.cpp|msg");  // sorted
  EXPECT_EQ(keys[1], "B|b.cpp|msg");
}

// ---------------------------------------------------------------------
// SARIF rendering.
// ---------------------------------------------------------------------

TEST(Sfcheck, SarifMatchesGoldenByteForByte) {
  const auto r = scan({"src/core/r1_entry.cpp", "src/core/r1_mid.cpp",
                       "src/geom/r1_sink.cpp", "src/core/suppress_ok.cpp"});
  const std::filesystem::path golden_path =
      std::filesystem::path(SFCHECK_FIXTURE_DIR) / "golden.sarif";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(sf::lint::render_sarif(r), ss.str());
}

TEST(Sfcheck, SarifCarriesRuleTableChainAndSuppression) {
  const auto r = scan({"src/core/r1_entry.cpp", "src/core/r1_mid.cpp",
                       "src/geom/r1_sink.cpp", "src/core/suppress_ok.cpp"});
  const std::string sarif = sf::lint::render_sarif(r);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"R1\""), std::string::npos);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(sarif.find("fixture demonstrating a reasoned suppression"),
            std::string::npos);
  // Every rule id is present in the driver table whether or not it
  // fired, so ruleIndex stays stable across reports.
  for (const char* id : {"\"id\": \"D1\"", "\"id\": \"D5\"", "\"id\": \"C1\"",
                         "\"id\": \"SUP\""}) {
    EXPECT_NE(sarif.find(id), std::string::npos) << id;
  }
}

TEST(Sfcheck, RendersTextAndJson) {
  const auto r = scan({"src/core/d4_bad.cpp"});
  const std::string text = sf::lint::render_text(r);
  EXPECT_NE(text.find("src/core/d4_bad.cpp:5: error: [D4]"), std::string::npos);
  EXPECT_NE(text.find("1 violation(s)"), std::string::npos);
  const std::string json = sf::lint::render_json(r);
  EXPECT_NE(json.find("\"rule\":\"D4\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

}  // namespace
