#include "analysis/fold_library.hpp"

#include <gtest/gtest.h>

#include "native/render.hpp"

namespace sf {
namespace {

struct LibraryWorld {
  FoldUniverse universe{25, 51};
  FoldLibrary library;

  static std::vector<std::size_t> all_indices(std::size_t n) {
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
    return v;
  }

  LibraryWorld() : library(universe, all_indices(25)) {}
};

TEST(FoldLibrary, BuildsOneEntryPerFold) {
  LibraryWorld w;
  ASSERT_EQ(w.library.size(), 25u);
  for (std::size_t i = 0; i < w.library.size(); ++i) {
    const auto& e = w.library.entry(i);
    EXPECT_EQ(e.fold_index, i);
    EXPECT_FALSE(e.annotation.empty());
    EXPECT_GT(e.length, 0);
    EXPECT_GT(e.radius_of_gyration, 0.0);
  }
}

TEST(FoldLibrary, SearchFindsOwnFold) {
  LibraryWorld w;
  // Query with (noisy copies of) library members: the generating fold
  // must be the top hit.
  int correct = 0;
  const int probes = 6;
  for (std::size_t f = 0; f < static_cast<std::size_t>(probes); ++f) {
    const Structure query = build_fold_structure(
        "q", w.universe.fold(f), w.universe.canonical_sequence(f), /*noise_A=*/0.4, 99 + f);
    const auto hits = w.library.search(query, 10);
    ASSERT_FALSE(hits.empty());
    if (hits.front().fold_index == f) ++correct;
    EXPECT_GT(hits.front().tm_query, 0.6);
  }
  EXPECT_GE(correct, probes - 1);
}

TEST(FoldLibrary, HitsSortedByTm) {
  LibraryWorld w;
  const Structure query = build_fold_structure("q", w.universe.fold(3),
                                               w.universe.canonical_sequence(3));
  const auto hits = w.library.search(query, 12);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].tm_query, hits[i].tm_query);
  }
}

TEST(FoldLibrary, ShortlistBoundsWork) {
  LibraryWorld w;
  const Structure query = build_fold_structure("q", w.universe.fold(0),
                                               w.universe.canonical_sequence(0));
  EXPECT_EQ(w.library.search(query, 5).size(), 5u);
  EXPECT_EQ(w.library.search(query, 500).size(), 25u);  // capped at size
}

TEST(FoldLibrary, ContactDensityFeature) {
  LibraryWorld w;
  // Compact library entries have nonzero contact density.
  const double cd = structure_contact_density(w.library.entry(0).structure);
  EXPECT_GT(cd, 0.0);
  // Tiny structure is safe.
  EXPECT_EQ(structure_contact_density(Structure{}), 0.0);
}

TEST(FoldLibrary, ExcludedFoldIsNotFound) {
  // Build a library missing fold 0; querying fold 0 gives no confident
  // match (the novel-fold scenario of §4.6).
  FoldUniverse universe(25, 51);
  std::vector<std::size_t> indices;
  for (std::size_t i = 1; i < 25; ++i) indices.push_back(i);
  FoldLibrary library(universe, indices);
  const Structure query = build_fold_structure("q", universe.fold(0),
                                               universe.canonical_sequence(0));
  const auto hits = library.search(query, 12);
  ASSERT_FALSE(hits.empty());
  EXPECT_LT(hits.front().tm_query, 0.6);
}

}  // namespace
}  // namespace sf
