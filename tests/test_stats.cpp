#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sf {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats rs;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
  // Sample variance with n-1.
  double m = 6.2, s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  EXPECT_NEAR(rs.variance(), s2 / 4.0, 1e-12);
}

TEST(RunningStats, Empty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, FractionAtLeast) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.add(i);  // 0..9
  EXPECT_DOUBLE_EQ(s.fraction_at_least(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(100.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_less_than(5.0), 0.5);
}

TEST(SampleSet, EmptyIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.fraction_at_least(1.0), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8}, z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, DegenerateIsZero) {
  std::vector<double> x{1, 1, 1}, y{1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.ascii().empty());
}

// Property sweep: merged stats equal whole-set stats for random splits.
class StatsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsMergeProperty, MergeInvariant) {
  const int split = GetParam();
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::cos(i * 1.3) * (i % 7 + 1);
    (i < split ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Splits, StatsMergeProperty, ::testing::Values(0, 1, 13, 50, 99, 100));

}  // namespace
}  // namespace sf
