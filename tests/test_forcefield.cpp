#include "relax/forcefield.hpp"

#include <gtest/gtest.h>

#include "bio/amino_acid.hpp"
#include "geom/backbone.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

Structure test_structure(int n = 30, unsigned seed = 3) {
  Rng rng(seed);
  std::vector<ResidueSpec> spec;
  const char* aas = "MKWLVEDRTYG";
  for (int i = 0; i < n; ++i) {
    ResidueSpec rs;
    rs.aa = aas[i % 11];
    rs.heavy_atoms = aa_heavy_atoms(rs.aa);
    rs.has_cb = aa_has_cb(rs.aa);
    rs.has_sc = aa_has_sc(rs.aa);
    spec.push_back(rs);
  }
  std::string ss;
  for (int i = 0; i < n; ++i) ss += (i / 10) % 2 ? 'H' : 'C';
  return build_structure("ff", spec, ss, rng);
}

TEST(ForceField, EnergyAtRestraintCentersIsModest) {
  const Structure s = test_structure();
  const ForceField ff(s);
  const double e0 = ff.energy(s.all_atom_coords());
  // At the builder geometry, restraints contribute nothing and bonds are
  // near-ideal; only weak angle/repulsion residue remains.
  EXPECT_GE(e0, 0.0);
  EXPECT_LT(e0, 50.0 * static_cast<double>(s.size()));
}

TEST(ForceField, EnergyRisesWhenDisplaced) {
  const Structure s = test_structure();
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  const double e0 = ff.energy(coords);
  Rng rng(7);
  for (auto& p : coords) {
    p += Vec3{rng.normal(0, 0.5), rng.normal(0, 0.5), rng.normal(0, 0.5)};
  }
  EXPECT_GT(ff.energy(coords), e0);
}

// The critical correctness test: analytic gradient vs finite differences.
class GradientCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(GradientCheck, MatchesFiniteDifferences) {
  const Structure s = test_structure(14, GetParam());
  const ForceField ff(s);
  auto coords = s.all_atom_coords();
  // Perturb so every term is active (restraints, bent bonds, repulsion).
  Rng rng(GetParam() + 100);
  for (auto& p : coords) {
    p += Vec3{rng.normal(0, 0.4), rng.normal(0, 0.4), rng.normal(0, 0.4)};
  }
  std::vector<Vec3> grad;
  ff.energy_and_gradient(coords, grad);

  const double h = 1e-6;
  // Spot-check a handful of coordinates.
  for (std::size_t idx : {std::size_t{0}, coords.size() / 3, coords.size() / 2,
                          coords.size() - 1}) {
    for (int axis = 0; axis < 3; ++axis) {
      auto plus = coords;
      auto minus = coords;
      double* pp = axis == 0 ? &plus[idx].x : axis == 1 ? &plus[idx].y : &plus[idx].z;
      double* pm = axis == 0 ? &minus[idx].x : axis == 1 ? &minus[idx].y : &minus[idx].z;
      *pp += h;
      *pm -= h;
      const double numeric = (ff.energy(plus) - ff.energy(minus)) / (2.0 * h);
      const double analytic = axis == 0 ? grad[idx].x : axis == 1 ? grad[idx].y : grad[idx].z;
      EXPECT_NEAR(analytic, numeric, 1e-3 * std::max(1.0, std::abs(numeric)))
          << "atom " << idx << " axis " << axis;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientCheck, ::testing::Values(1u, 2u, 3u, 4u));

TEST(ForceField, RepulsionActsOnClashes) {
  // Two residues forced on top of each other: large positive energy that
  // the same structure without the clash does not have.
  Structure s = test_structure(20);
  const ForceField ff_clean(s);
  const double e_clean = ff_clean.energy(s.all_atom_coords());

  Structure clashed = s;
  // Move residue 15's atoms onto residue 3.
  const Vec3 d = s.residue(3).ca - s.residue(15).ca;
  Residue& r = clashed.residue(15);
  r.n += d;
  r.ca += d;
  r.c += d;
  r.o += d;
  if (r.has_cb) r.cb += d;
  if (r.has_sc) r.sc += d;
  // Note: the force field is built on the *clashed* structure so the
  // restraints are centered there; the energy difference is pure
  // repulsion (plus bond strain at the moved residue's backbone links).
  const ForceField ff_clashed(clashed);
  const double e_clashed = ff_clashed.energy(clashed.all_atom_coords());
  EXPECT_GT(e_clashed, e_clean + 10.0);
}

TEST(ForceField, RestraintTermPinsToInput) {
  const Structure s = test_structure();
  ForceFieldParams params;
  params.bond_k = 0.0;
  params.angle_k = 0.0;
  params.repulsion_k = 0.0;
  params.sidechain_ideality_k = 0.0;
  const ForceField ff(s, params);
  auto coords = s.all_atom_coords();
  EXPECT_NEAR(ff.energy(coords), 0.0, 1e-9);
  coords[0].x += 2.0;
  // k * d^2 = 10 * 4 = 40 kcal/mol.
  EXPECT_NEAR(ff.energy(coords), 40.0, 1e-9);
}

TEST(ForceField, TopologyCounts) {
  const Structure s = test_structure(10);
  const ForceField ff(s);
  EXPECT_EQ(ff.num_atoms(), s.modeled_atom_count());
  // Bonds: per residue 3 backbone + optional CB/SC, plus 2 inter-residue
  // bonds per junction.
  EXPECT_GT(ff.num_bonds(), 3u * 10u);
}

}  // namespace
}  // namespace sf
