// Refactor invariant: a seed-fixed campaign reproduces the exact
// CampaignReport (stage walls, node-hours, per-target results) that the
// pre-refactor monolithic Pipeline::run() produced. The golden values
// below were captured from the seed implementation; the stage-driver +
// Executor decomposition was verified byte-identical against them. The
// in-tree assertions use a tight relative tolerance so the test stays
// portable across toolchains (FP contraction), while still catching any
// semantic drift -- reordered task queues, changed RNG streams, or
// altered cost pricing all move these values by many orders of
// magnitude more.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/pipeline.hpp"
#include "fold/memory_model.hpp"
#include "store/artifact_store.hpp"

namespace sf {
namespace {

void expect_close(double actual, double golden, const char* what) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * 1e-6 + 1e-9) << what;
}

double record_checksum(const std::vector<TaskRecord>& records) {
  double sum = 0.0;
  for (const auto& r : records) {
    sum += r.start_s + 2.0 * r.end_s + static_cast<double>(r.worker + 1);
  }
  return sum;
}

TEST(CampaignRegression, SeedFixedCampaignMatchesPreRefactorReport) {
  FoldUniverse universe(40, 31);
  SpeciesProfile profile = species_d_vulgaris();
  const auto records = ProteomeGenerator(universe, profile, 12).generate(80);
  PipelineConfig cfg;
  cfg.summit_nodes = 4;
  cfg.andes_nodes = 8;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 4;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 30;
  cfg.relax_sample = 10;
  const CampaignReport rep = Pipeline(universe, cfg).run(records);

  expect_close(rep.features.wall_s, 3011.6797948717949, "features.wall_s");
  expect_close(rep.features.node_hours, 6.6926217663817669, "features.node_hours");
  expect_close(rep.features.mean_utilization, 0.99499557606110034, "features.util");
  expect_close(rep.features.finish_spread_s, 20.919589743590222, "features.spread");
  expect_close(rep.inference.wall_s, 5671.0117400000026, "inference.wall_s");
  expect_close(rep.inference.node_hours, 6.3011241555555584, "inference.node_hours");
  expect_close(rep.inference.mean_utilization, 0.99235026513760283, "inference.util");
  expect_close(rep.inference.finish_spread_s, 71.219720000000052, "inference.spread");
  expect_close(rep.relaxation.wall_s, 311.15559999999999, "relax.wall_s");
  expect_close(rep.relaxation.node_hours, 0.086432111111111112, "relax.node_hours");
  EXPECT_EQ(rep.relaxation.tasks, 80);
  EXPECT_EQ(rep.features.failed_tasks, 0);
  EXPECT_EQ(rep.relaxation.failed_tasks, 0);

  expect_close(rep.plddt.mean(), 82.580293685541449, "plddt.mean");
  expect_close(rep.ptms.mean(), 0.85000878918260547, "ptms.mean");
  expect_close(rep.recycles.mean(), 3.1333333333333333, "recycles.mean");

  // Per-task timeline of the inference stage, folded into a checksum.
  ASSERT_EQ(rep.inference_records.size(), 400u);
  expect_close(record_checksum(rep.inference_records), 4952653.9888200006, "records.checksum");

  // Per-target spot checks.
  EXPECT_EQ(rep.targets[0].id, "d_vulgaris_00000");
  EXPECT_EQ(rep.targets[0].length, 173);
  EXPECT_EQ(rep.targets[0].recycles, 3);
  EXPECT_EQ(rep.targets[7].id, "d_vulgaris_00007");
  EXPECT_EQ(rep.targets[7].length, 199);
  EXPECT_EQ(rep.targets[7].recycles, 4);
  EXPECT_FALSE(rep.targets[7].relaxed);
}

TEST(CampaignRegression, FifoStoreUnderPressureLeavesGoldensUntouched) {
  // Eviction pluggability must not perturb existing outputs: the same
  // seed-fixed campaign, now with a capacity-squeezed kFifo store
  // attached (evicting throughout), still lands on the PR 6 goldens.
  FoldUniverse universe(40, 31);
  SpeciesProfile profile = species_d_vulgaris();
  const auto records = ProteomeGenerator(universe, profile, 12).generate(80);
  PipelineConfig cfg;
  cfg.summit_nodes = 4;
  cfg.andes_nodes = 8;
  cfg.relax_nodes = 1;
  cfg.db_replicas = 4;
  cfg.jobs_per_replica = 2;
  cfg.quality_sample = 30;
  cfg.relax_sample = 10;

  const std::string dir = ::testing::TempDir() + "regression_fifo_store";
  std::filesystem::remove_all(dir);
  store::StorePolicy policy;
  policy.eviction = store::EvictionPolicy::kFifo;
  policy.capacity_bytes = 2000000;
  store::ArtifactStore artifacts(dir, policy);
  EXPECT_FALSE(artifacts.open());
  const CampaignReport rep = Pipeline(universe, cfg).run(records, nullptr, nullptr, &artifacts);
  EXPECT_GT(artifacts.total_stats().evictions, 0u);

  expect_close(rep.features.wall_s, 3011.6797948717949, "features.wall_s");
  expect_close(rep.features.node_hours, 6.6926217663817669, "features.node_hours");
  expect_close(rep.features.mean_utilization, 0.99499557606110034, "features.util");
  expect_close(rep.features.finish_spread_s, 20.919589743590222, "features.spread");
  expect_close(rep.inference.wall_s, 5671.0117400000026, "inference.wall_s");
  expect_close(rep.inference.node_hours, 6.3011241555555584, "inference.node_hours");
  expect_close(rep.inference.mean_utilization, 0.99235026513760283, "inference.util");
  expect_close(rep.inference.finish_spread_s, 71.219720000000052, "inference.spread");
  expect_close(rep.relaxation.wall_s, 311.15559999999999, "relax.wall_s");
  expect_close(rep.relaxation.node_hours, 0.086432111111111112, "relax.node_hours");
  expect_close(rep.plddt.mean(), 82.580293685541449, "plddt.mean");
  expect_close(rep.ptms.mean(), 0.85000878918260547, "ptms.mean");
  ASSERT_EQ(rep.inference_records.size(), 400u);
  expect_close(record_checksum(rep.inference_records), 4952653.9888200006, "records.checksum");
}

TEST(CampaignRegression, HighmemReroutePathMatchesPreRefactorReport) {
  // Long casp14 targets: every model OOMs on the standard pool and
  // reruns on the high-memory pool via the generic RetryPolicy; the
  // report must match the old hand-coded high-memory rerun exactly.
  FoldUniverse universe(10, 5);
  SpeciesProfile profile = benchmark_559_profile();
  profile.length_min = 1100;
  profile.length_log_mu = 7.1;
  const auto records = ProteomeGenerator(universe, profile, 3).generate(6);
  for (const auto& r : records) ASSERT_FALSE(fits_standard_node(r.length(), 8));

  PipelineConfig cfg;
  cfg.preset = preset_casp14();
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.quality_sample = 6;
  cfg.relax_sample = 0;
  cfg.use_highmem_for_oom = true;
  cfg.highmem_nodes = 1;
  const CampaignReport rep = Pipeline(universe, cfg).run(records);

  expect_close(rep.inference.wall_s, 94171.435840000006, "inference.wall_s");
  expect_close(rep.inference.node_hours, 33.534252355555559, "inference.node_hours");
  EXPECT_EQ(rep.inference.failed_tasks, 0);
  ASSERT_EQ(rep.inference_records.size(), 30u);
  expect_close(record_checksum(rep.inference_records), 632715.65087999997, "records.checksum");
}

TEST(CampaignRegression, DeterministicAcrossRuns) {
  FoldUniverse universe(40, 31);
  SpeciesProfile profile = species_d_vulgaris();
  const auto records = ProteomeGenerator(universe, profile, 12).generate(40);
  PipelineConfig cfg;
  cfg.summit_nodes = 2;
  cfg.andes_nodes = 4;
  cfg.relax_nodes = 1;
  cfg.quality_sample = 10;
  cfg.relax_sample = 5;
  const CampaignReport a = Pipeline(universe, cfg).run(records);
  const CampaignReport b = Pipeline(universe, cfg).run(records);
  EXPECT_DOUBLE_EQ(a.features.wall_s, b.features.wall_s);
  EXPECT_DOUBLE_EQ(a.inference.wall_s, b.inference.wall_s);
  EXPECT_DOUBLE_EQ(a.relaxation.wall_s, b.relaxation.wall_s);
  EXPECT_DOUBLE_EQ(a.plddt.mean(), b.plddt.mean());
  EXPECT_DOUBLE_EQ(record_checksum(a.inference_records), record_checksum(b.inference_records));
}

}  // namespace
}  // namespace sf
