#include "fold/engine.hpp"

#include <gtest/gtest.h>

#include "bio/species.hpp"
#include "fold/memory_model.hpp"
#include "geom/violations.hpp"
#include "seqsearch/feature_model.hpp"
#include "util/stats.hpp"

namespace sf {
namespace {

struct EngineWorld {
  FoldUniverse universe{60, 17};
  ProteomeGenerator gen{universe, benchmark_559_profile(), 4};
  std::vector<ProteinRecord> records = gen.generate(60);
  FoldingEngine engine{universe};

  InputFeatures feats(const ProteinRecord& r) const {
    return sample_features(r, LibraryKind::kReduced);
  }
};

TEST(Engine, FiveModelsHaveExpectedShape) {
  const auto models = five_models();
  ASSERT_EQ(models.size(), 5u);
  int template_models = 0;
  for (const auto& m : models) {
    if (m.uses_templates) ++template_models;
  }
  EXPECT_EQ(template_models, 2);  // models 1-2 use templates (§3.2.1)
}

TEST(Engine, PredictionIsDeterministic) {
  EngineWorld w;
  const auto& rec = w.records[0];
  const auto p1 = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_genome());
  const auto p2 = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_genome());
  EXPECT_DOUBLE_EQ(p1.ptms, p2.ptms);
  EXPECT_DOUBLE_EQ(p1.true_tm, p2.true_tm);
  EXPECT_EQ(p1.trace.recycles_run, p2.trace.recycles_run);
  const auto ca1 = p1.structure.ca_coords();
  const auto ca2 = p2.structure.ca_coords();
  for (std::size_t i = 0; i < ca1.size(); ++i) {
    EXPECT_NEAR(distance(ca1[i], ca2[i]), 0.0, 1e-12);
  }
}

TEST(Engine, StructureSizedLikeTarget) {
  EngineWorld w;
  const auto& rec = w.records[1];
  const auto p = w.engine.predict(rec, w.feats(rec), five_models()[2], preset_reduced_db());
  EXPECT_EQ(p.structure.size(), rec.sequence.length());
  EXPECT_FALSE(p.out_of_memory);
}

TEST(Engine, ConfidenceTracksTruth) {
  EngineWorld w;
  std::vector<double> plddt, true_lddt, ptms, true_tm;
  for (const auto& rec : w.records) {
    const auto p = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_reduced_db());
    plddt.push_back(p.plddt);
    true_lddt.push_back(p.true_lddt);
    ptms.push_back(p.ptms);
    true_tm.push_back(p.true_tm);
  }
  EXPECT_GT(pearson(plddt, true_lddt), 0.85);
  EXPECT_GT(pearson(ptms, true_tm), 0.85);
}

TEST(Engine, LocalConfidenceExceedsGlobal) {
  // AlphaFold's signature: pLDDT (0-100) relatively higher than pTMS (0-1).
  EngineWorld w;
  SampleSet plddt, ptms;
  for (const auto& rec : w.records) {
    const auto p = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_reduced_db());
    plddt.add(p.plddt / 100.0);
    ptms.add(p.ptms);
  }
  EXPECT_GT(plddt.mean(), ptms.mean());
}

TEST(Engine, MoreRecyclesNeverHurtOnHardTargets) {
  EngineWorld w;
  // Find hard targets and compare reduced_db (3 recycles) vs super.
  int improved = 0, compared = 0;
  for (const auto& rec : w.records) {
    if (rec.hardness < 0.4) continue;
    const auto f = w.feats(rec);
    const auto p3 = w.engine.predict(rec, f, five_models()[0], preset_reduced_db());
    const auto p20 = w.engine.predict(rec, f, five_models()[0], preset_super());
    ++compared;
    if (p20.true_tm >= p3.true_tm - 0.03) ++improved;
  }
  ASSERT_GT(compared, 2);
  // Allowing slack for recycle jitter (hard targets explore between
  // recycles), super should win or tie on ~all hard targets.
  EXPECT_GE(improved * 10, compared * 9);
}

TEST(Engine, EffectiveHardnessRespondsToInputs) {
  EngineWorld w;
  ProteinRecord rec = w.records[0];
  rec.hardness = 0.4;  // mid-range so nothing clamps at the [0,1] edges
  InputFeatures deep = w.feats(rec);
  deep.neff = 100.0;
  deep.has_templates = true;
  InputFeatures shallow = deep;
  shallow.neff = 0.5;
  const ModelWeights tmpl_model = five_models()[0];  // uses templates
  EXPECT_LT(w.engine.effective_hardness(rec, deep, tmpl_model),
            w.engine.effective_hardness(rec, shallow, tmpl_model));
  // Template availability helps template-consuming models only.
  InputFeatures no_tmpl = deep;
  no_tmpl.has_templates = false;
  EXPECT_LT(w.engine.effective_hardness(rec, deep, tmpl_model),
            w.engine.effective_hardness(rec, no_tmpl, tmpl_model));
  const ModelWeights seq_model = five_models()[3];
  EXPECT_DOUBLE_EQ(w.engine.effective_hardness(rec, deep, seq_model),
                   w.engine.effective_hardness(rec, no_tmpl, seq_model));
}

TEST(Engine, DynamicPresetRespectsRecycleCaps) {
  EngineWorld w;
  for (const auto& rec : w.records) {
    const auto p = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_super());
    EXPECT_LE(p.trace.recycles_run, effective_max_recycles(preset_super(), rec.length()));
    EXPECT_GE(p.trace.recycles_run, preset_super().min_dynamic_recycles);
    EXPECT_EQ(p.trace.distogram_changes.size(),
              static_cast<std::size_t>(p.trace.recycles_run));
    if (p.trace.converged) {
      EXPECT_LT(p.trace.distogram_changes.back(), preset_super().convergence_tol_A);
    }
  }
}

TEST(Engine, FixedPresetRunsExactlyMaxRecycles) {
  EngineWorld w;
  const auto p =
      w.engine.predict(w.records[0], w.feats(w.records[0]), five_models()[1], preset_reduced_db());
  EXPECT_EQ(p.trace.recycles_run, 3);
  EXPECT_FALSE(p.trace.converged);
}

TEST(Engine, DistogramChangesDecayOverRecycles) {
  EngineWorld w;
  PresetConfig probe = preset_super();
  probe.convergence_tol_A = 0.0;  // run to the cap
  const auto p = w.engine.predict(w.records[2], w.feats(w.records[2]), five_models()[0], probe);
  ASSERT_GE(p.trace.distogram_changes.size(), 5u);
  EXPECT_GT(p.trace.distogram_changes.front(), p.trace.distogram_changes.back());
}

TEST(Engine, OutOfMemoryEnforcedAndBypassable) {
  FoldUniverse universe(10, 3);
  // A very long protein under the 8-ensemble preset must OOM on 16 GB.
  SpeciesProfile profile = benchmark_559_profile();
  profile.length_min = 1200;
  profile.length_log_mu = 7.2;
  const auto records = ProteomeGenerator(universe, profile, 1).generate(1);
  ASSERT_FALSE(fits_standard_node(records[0].length(), 8));

  FoldingEngine engine(universe);
  const auto feats = sample_features(records[0], LibraryKind::kReduced);
  const auto p = engine.predict(records[0], feats, five_models()[0], preset_casp14());
  EXPECT_TRUE(p.out_of_memory);
  EXPECT_TRUE(p.structure.empty());

  EngineParams highmem;
  highmem.memory_budget_gb = kHighMemNodeTaskBudgetGb;
  FoldingEngine hm_engine(universe, highmem);
  const auto p2 = hm_engine.predict(records[0], feats, five_models()[0], preset_casp14());
  EXPECT_FALSE(p2.out_of_memory);
}

TEST(Engine, TopModelSelection) {
  EngineWorld w;
  const auto preds =
      w.engine.predict_all_models(w.records[3], w.feats(w.records[3]), preset_reduced_db());
  ASSERT_EQ(preds.size(), 5u);
  const int top = top_model_index(preds);
  ASSERT_GE(top, 0);
  for (const auto& p : preds) {
    EXPECT_LE(p.ptms, preds[static_cast<std::size_t>(top)].ptms);
  }
  EXPECT_EQ(top_model_index({}), -1);
}

TEST(Engine, UnrelaxedModelsCarryOccasionalViolations) {
  // §4.4: unrelaxed models average ~0.22 clashes / ~3.8 bumps. Check the
  // engine produces a nonzero but modest violation load.
  EngineWorld w;
  std::size_t bumps = 0;
  for (const auto& rec : w.records) {
    const auto p = w.engine.predict(rec, w.feats(rec), five_models()[0], preset_reduced_db());
    bumps += count_violations(p.structure).bumps;
  }
  EXPECT_GT(bumps, 0u);
  EXPECT_LT(static_cast<double>(bumps) / w.records.size(), 60.0);
}

TEST(Engine, EnsemblesTightenConfidenceHeads) {
  EngineWorld w;
  // Same target/model under 1 vs 8 ensembles: head error shrinks.
  SampleSet err1, err8;
  EngineParams big_mem;
  big_mem.memory_budget_gb = 1e9;
  FoldingEngine engine(w.universe, big_mem);
  PresetConfig one = preset_reduced_db();
  PresetConfig eight = preset_casp14();
  for (const auto& rec : w.records) {
    const auto f = w.feats(rec);
    const auto p1 = engine.predict(rec, f, five_models()[0], one);
    const auto p8 = engine.predict(rec, f, five_models()[0], eight);
    err1.add(std::abs(p1.ptms - p1.true_tm));
    err8.add(std::abs(p8.ptms - p8.true_tm));
  }
  EXPECT_LT(err8.mean(), err1.mean());
}

}  // namespace
}  // namespace sf
