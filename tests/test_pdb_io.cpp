#include "geom/pdb_io.hpp"

#include <gtest/gtest.h>

#include "geom/backbone.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

Structure sample_structure() {
  Rng rng(3);
  std::vector<ResidueSpec> spec;
  const std::string seq = "MKTAYIAKQRG";
  for (char aa : spec.empty() ? std::vector<char>(seq.begin(), seq.end()) : std::vector<char>{}) {
    ResidueSpec rs;
    rs.aa = aa;
    rs.has_cb = aa != 'G';
    rs.has_sc = aa != 'G' && aa != 'A';
    spec.push_back(rs);
  }
  return build_structure("sample", spec, std::string(seq.size(), 'H'), rng);
}

TEST(PdbIo, WriteContainsAtomRecords) {
  const std::string text = to_pdb_string(sample_structure());
  EXPECT_NE(text.find("ATOM"), std::string::npos);
  EXPECT_NE(text.find("CA"), std::string::npos);
  EXPECT_NE(text.find("TER"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
}

TEST(PdbIo, RoundTripPreservesGeometryAndSequence) {
  const Structure s = sample_structure();
  const Structure r = read_pdb_string(to_pdb_string(s), "copy");
  ASSERT_EQ(r.size(), s.size());
  EXPECT_EQ(r.sequence_string(), s.sequence_string());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(distance(r.residue(i).ca, s.residue(i).ca), 0.0, 1e-3);
    EXPECT_NEAR(distance(r.residue(i).n, s.residue(i).n), 0.0, 1e-3);
    EXPECT_EQ(r.residue(i).has_cb, s.residue(i).has_cb);
    EXPECT_EQ(r.residue(i).has_sc, s.residue(i).has_sc);
  }
}

TEST(PdbIo, FileRoundTrip) {
  const Structure s = sample_structure();
  const std::string path = ::testing::TempDir() + "/sf_test.pdb";
  write_pdb_file(path, s);
  const Structure r = read_pdb_file(path);
  EXPECT_EQ(r.size(), s.size());
}

TEST(PdbIo, IgnoresNonAtomLines) {
  const std::string text =
      "HEADER junk\nREMARK x\n"
      "ATOM      1  CA  ALA A   1      1.000   2.000   3.000  1.00  0.00           C\n";
  const Structure s = read_pdb_string(text);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.residue(0).aa, 'A');
  EXPECT_NEAR(s.residue(0).ca.x, 1.0, 1e-9);
}

TEST(PdbIo, ThrowsOnTruncatedAtom) {
  EXPECT_THROW(read_pdb_string("ATOM  1 CA"), std::runtime_error);
}

TEST(PdbIo, ThrowsOnMissingFile) {
  EXPECT_THROW(read_pdb_file("/nonexistent/x.pdb"), std::runtime_error);
  EXPECT_THROW(write_pdb_file("/nonexistent/dir/x.pdb", Structure{}), std::runtime_error);
}

TEST(PdbIo, UnknownResidueMapsToX) {
  const std::string text =
      "ATOM      1  CA  XYZ A   1      0.000   0.000   0.000  1.00  0.00           C\n";
  const Structure s = read_pdb_string(text);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.residue(0).aa, 'X');
}

}  // namespace
}  // namespace sf
