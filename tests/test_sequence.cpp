#include "bio/sequence.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

TEST(Sequence, BasicAccessors) {
  const Sequence s("id1", "MKT", "a description");
  EXPECT_EQ(s.id(), "id1");
  EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(s[1], 'K');
  EXPECT_TRUE(s.is_valid());
  EXPECT_FALSE(Sequence("x", "MKZ").is_valid());
}

TEST(Sequence, NaiveIdentity) {
  EXPECT_DOUBLE_EQ(naive_sequence_identity("AAAA", "AAAA"), 1.0);
  EXPECT_DOUBLE_EQ(naive_sequence_identity("AAAA", "AATT"), 0.5);
  EXPECT_DOUBLE_EQ(naive_sequence_identity("", "AA"), 0.0);
  // Compares over min length.
  EXPECT_DOUBLE_EQ(naive_sequence_identity("AA", "AATT"), 1.0);
}

TEST(Fasta, ParsesMultiRecordWrapped) {
  const std::string text =
      ">seq1 first protein\nMKT\nAYI\n\n>seq2\nGGG\n";
  const auto seqs = read_fasta_string(text);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id(), "seq1");
  EXPECT_EQ(seqs[0].description(), "first protein");
  EXPECT_EQ(seqs[0].residues(), "MKTAYI");
  EXPECT_EQ(seqs[1].id(), "seq2");
  EXPECT_EQ(seqs[1].residues(), "GGG");
}

TEST(Fasta, RoundTrip) {
  std::vector<Sequence> seqs{
      Sequence("a", std::string(150, 'M'), "long one"),
      Sequence("b", "GW", ""),
  };
  const auto parsed = read_fasta_string(to_fasta_string(seqs, 60));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].residues(), seqs[0].residues());
  EXPECT_EQ(parsed[0].description(), "long one");
  EXPECT_EQ(parsed[1].residues(), "GW");
}

TEST(Fasta, WrapWidth) {
  const std::vector<Sequence> seqs{Sequence("a", std::string(100, 'A'))};
  const std::string text = to_fasta_string(seqs, 10);
  // 100 residues at width 10 -> 10 sequence lines + header.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 11u);
}

TEST(Fasta, EmptyInput) { EXPECT_TRUE(read_fasta_string("").empty()); }

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/f.fasta"), std::runtime_error);
}

TEST(Fasta, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sf_test.fasta";
  write_fasta_file(path, {Sequence("z", "MKWT", "desc here")});
  const auto seqs = read_fasta_file(path);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].residues(), "MKWT");
  EXPECT_EQ(seqs[0].description(), "desc here");
}

}  // namespace
}  // namespace sf
