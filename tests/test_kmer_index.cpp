#include "seqsearch/kmer_index.hpp"

#include <gtest/gtest.h>

#include "bio/fold_grammar.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

TEST(KmerIndex, FindsExactCopy) {
  KmerIndex idx(5);
  idx.add_sequence("MKTAYIAKQRQISFVKSHFSRQ");
  idx.add_sequence("GGGGGGGGGGGGGGGGGG");
  const auto hits = idx.query("MKTAYIAKQRQISFVKSHFSRQ");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front().sequence_index, 0u);
  EXPECT_EQ(hits.front().diagonal / 16, 0);  // dominant diagonal ~0
}

TEST(KmerIndex, DiagonalReflectsOffset) {
  KmerIndex idx(5);
  idx.add_sequence(std::string(25, 'G') + "MKTAYIAKQRQISFVKSH");
  const auto hits = idx.query("MKTAYIAKQRQISFVKSH");
  ASSERT_FALSE(hits.empty());
  // Query position - subject position = -25 (bucketed by 16).
  EXPECT_NEAR(hits.front().diagonal, -25.0, 16.0);
}

TEST(KmerIndex, MinSeedsFilters) {
  KmerIndex idx(5);
  idx.add_sequence("MKTAYWWWWWWWWWWWWWW");  // shares only one 5-mer region
  const auto strict = idx.query("MKTAYGGGGGGGGGGG", /*min_seeds=*/3);
  EXPECT_TRUE(strict.empty());
  const auto loose = idx.query("MKTAYGGGGGGGGGGG", /*min_seeds=*/1);
  EXPECT_FALSE(loose.empty());
}

TEST(KmerIndex, RanksCloserHomologsHigher) {
  Rng rng(3);
  const FoldSpec fold = sample_fold(rng, 120);
  const std::string parent = sample_sequence_for_ss(render_ss(fold, 120), rng);
  KmerIndex idx(5);
  Rng h1(1), h2(2);
  idx.add_sequence(homolog_sequence(fold, parent, 120, 120, 0.95, h1));  // close
  idx.add_sequence(homolog_sequence(fold, parent, 120, 120, 0.35, h2));  // remote
  const auto hits = idx.query(parent, 1);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits.front().sequence_index, 0u);  // close homolog ranks first
}

TEST(KmerIndex, ShortSequencesAreIndexedSafely) {
  KmerIndex idx(5);
  idx.add_sequence("MK");  // shorter than k: no k-mers
  idx.add_sequence("MKTAY");
  EXPECT_EQ(idx.indexed_sequences(), 2u);
  const auto hits = idx.query("MK");
  EXPECT_TRUE(hits.empty());
}

TEST(KmerIndex, NonStandardResiduesPoisonKmers) {
  KmerIndex idx(5);
  idx.add_sequence("MKXAYIAKQR");  // X breaks the k-mers spanning it
  const auto hits = idx.query("MKXAYIAKQR", 1);
  // Only k-mers not containing X can match ("YIAKQR" has two).
  for (const auto& h : hits) EXPECT_LE(h.seed_count, 3);
}

TEST(KmerIndex, MaxHitsCap) {
  KmerIndex idx(5);
  const std::string seq = "MKTAYIAKQRQISFVKSHFSRQ";
  for (int i = 0; i < 50; ++i) idx.add_sequence(seq);
  const auto hits = idx.query(seq, 1, 10);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(KmerIndex, KClamping) {
  EXPECT_EQ(KmerIndex(1).k(), 3);
  EXPECT_EQ(KmerIndex(20).k(), 8);
  EXPECT_EQ(KmerIndex(5).k(), 5);
}

}  // namespace
}  // namespace sf
