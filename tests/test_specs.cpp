#include "score/specs_score.hpp"

#include <gtest/gtest.h>

#include "bio/amino_acid.hpp"
#include "geom/backbone.hpp"
#include "util/rng.hpp"

namespace sf {
namespace {

Structure build_test_structure(unsigned seed = 3, int n = 50) {
  Rng rng(seed);
  std::vector<ResidueSpec> spec;
  const char* aas = "MKWLVEDRTY";
  for (int i = 0; i < n; ++i) {
    ResidueSpec rs;
    rs.aa = aas[i % 10];
    rs.heavy_atoms = aa_heavy_atoms(rs.aa);
    rs.has_cb = aa_has_cb(rs.aa);
    rs.has_sc = aa_has_sc(rs.aa);
    spec.push_back(rs);
  }
  return build_structure("t", spec, std::string(static_cast<std::size_t>(n), 'H'), rng);
}

TEST(Specs, SelfIsPerfect) {
  const Structure s = build_test_structure();
  const SpecsResult r = specs_score(s, s);
  EXPECT_NEAR(r.specs, 1.0, 1e-6);
  EXPECT_NEAR(r.backbone, 1.0, 1e-6);
  EXPECT_NEAR(r.sidechain, 1.0, 1e-6);
}

TEST(Specs, MonotoneUnderNoise) {
  const Structure ref = build_test_structure();
  double prev = 1.1;
  for (double sigma : {0.3, 1.0, 3.0}) {
    Rng noise(5);
    Structure model = ref;
    auto coords = model.all_atom_coords();
    for (auto& p : coords) {
      p += Vec3{noise.normal(0, sigma), noise.normal(0, sigma), noise.normal(0, sigma)};
    }
    model.set_all_atom_coords(coords);
    const double v = specs_score(model, ref).specs;
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Specs, SensitiveToSidechainOnlyPerturbation) {
  const Structure ref = build_test_structure();
  Structure model = ref;
  Rng noise(7);
  // Perturb only SC atoms.
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (model.residue(i).has_sc) {
      model.residue(i).sc += Vec3{noise.normal(0, 1.5), noise.normal(0, 1.5),
                                  noise.normal(0, 1.5)};
    }
  }
  const SpecsResult r = specs_score(model, ref);
  EXPECT_NEAR(r.backbone, 1.0, 1e-6);     // backbone untouched
  EXPECT_LT(r.sidechain, 0.95);           // sidechain term notices
  EXPECT_LT(r.specs, 1.0);
}

TEST(Specs, MismatchThrows) {
  EXPECT_THROW(specs_score(build_test_structure(1, 10), build_test_structure(1, 11)),
               std::invalid_argument);
}

TEST(Specs, EmptyIsSafe) {
  const SpecsResult r = specs_score(Structure{}, Structure{});
  EXPECT_EQ(r.specs, 0.0);
}

}  // namespace
}  // namespace sf
